"""``BENCH_perf.json``: the committed performance trajectory.

One JSON document holds an append-only list of provenance-stamped
entries; each entry is one suite run (or one telemetry-overhead
measurement) with its :class:`~repro.telemetry.provenance.RunManifest`,
so every number in the history is attributable to the exact tree,
config and host that produced it.  The comparator
(:mod:`repro.perf.compare`) gates regressions against the recent
window of this file.

Layout::

    {
      "schema": 1,
      "entries": [
        {
          "kind": "perf-suite",
          "created_utc": "...",
          "manifest": {...},                # RunManifest.to_dict()
          "context": {"repeats": 3, ...},   # caller-provided
          "results": {"pipeline_cycle_loop": {"best_s": 0.8, "repeats": 3}, ...}
        },
        ...
      ]
    }
"""

from __future__ import annotations

import json
import os
from typing import Any, Mapping

from repro.telemetry.provenance import RunManifest, collect_manifest

#: History layout version; bump when entry fields change meaning.
HISTORY_SCHEMA = 1

#: Default location, committed at the repository root.
DEFAULT_HISTORY_PATH = "BENCH_perf.json"

#: Entries kept per file — bounds the committed file as history grows.
MAX_ENTRIES = 50

#: Entry kind written by ``repro perf run``.
KIND_PERF_SUITE = "perf-suite"

#: Entry kind written by ``repro.telemetry.overhead``.
KIND_TELEMETRY_OVERHEAD = "telemetry-overhead"


def empty_history() -> dict[str, Any]:
    return {"schema": HISTORY_SCHEMA, "entries": []}


def load_history(path: str) -> dict[str, Any]:
    """Load a history file; a missing file is an empty history.

    A present-but-malformed file raises ``ValueError`` — silently
    restarting the trajectory would hide exactly the regression the
    file exists to catch.
    """
    if not os.path.exists(path):
        return empty_history()
    with open(path) as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON ({exc})") from None
    if not isinstance(doc, dict) or not isinstance(doc.get("entries"), list):
        raise ValueError(f"{path}: not a BENCH_perf history document")
    doc.setdefault("schema", HISTORY_SCHEMA)
    return doc


def entries_of_kind(history: Mapping[str, Any], kind: str = KIND_PERF_SUITE) -> list[dict[str, Any]]:
    """The history's entries of one kind, oldest first."""
    return [
        e
        for e in history.get("entries", ())
        if isinstance(e, Mapping) and e.get("kind") == kind
    ]


def _result_dict(value: Any) -> dict[str, Any]:
    if hasattr(value, "to_dict"):
        return dict(value.to_dict())
    if isinstance(value, Mapping):
        return dict(value)
    return {"best_s": float(value)}


def make_entry(
    results: Mapping[str, Any],
    *,
    kind: str = KIND_PERF_SUITE,
    manifest: RunManifest | None = None,
    context: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Build one history entry from suite results.

    ``results`` values may be :class:`~repro.perf.bench.BenchResult`
    objects, mappings with a ``best_s`` key, or bare seconds.
    """
    if manifest is None:
        manifest = collect_manifest(extra={"bench_kind": kind})
    return {
        "kind": kind,
        "created_utc": manifest.created_utc,
        "manifest": manifest.to_dict(),
        "context": dict(context or {}),
        "results": {name: _result_dict(v) for name, v in sorted(results.items())},
    }


def append_entry(
    path: str,
    results: Mapping[str, Any],
    *,
    kind: str = KIND_PERF_SUITE,
    manifest: RunManifest | None = None,
    context: Mapping[str, Any] | None = None,
    max_entries: int = MAX_ENTRIES,
) -> dict[str, Any]:
    """Append one entry to ``path`` (rewriting the whole document).

    The file is created when absent; the entry list is trimmed to the
    newest ``max_entries``.  Returns the appended entry.
    """
    history = load_history(path)
    entry = make_entry(results, kind=kind, manifest=manifest, context=context)
    entries = list(history.get("entries", []))
    entries.append(entry)
    if max_entries > 0:
        entries = entries[-max_entries:]
    history["entries"] = entries
    history["schema"] = HISTORY_SCHEMA
    with open(path, "w") as fh:
        json.dump(history, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return entry
