"""Chrome trace-event JSON export (Perfetto / about:tracing).

Converts the two observability streams into one trace document:

* :class:`~repro.perf.spans.SpanRecord` lists become complete events
  (``"ph": "X"``) — nested slices on one track;
* recorded bus events (:class:`~repro.telemetry.timeline.RecordedEvent`)
  become instant events (``"ph": "i"``) for controller decisions and
  complete events for ``interval.close``, laid out on per-family tracks
  (intervals / DVM / allocation / fetch) in the *cycle* time domain.

The exporter emits the JSON-object form ``{"traceEvents": [...]}`` with
the run manifest under ``otherData``, which both Perfetto and
``chrome://tracing`` load directly.  ``validate_trace()`` checks the
schema and the nesting well-formedness the tests (and CI artifact
consumers) rely on.

Timestamps (``ts``/``dur``) are microseconds per the trace-event spec;
for cycle-domain tracks one simulated cycle maps to ``cycle_us``
microseconds (1.0 by default, i.e. "1 µs = 1 cycle").
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping, Sequence

from repro.perf.spans import SpanRecord
from repro.telemetry.provenance import RunManifest
from repro.telemetry.timeline import RecordedEvent

#: The simulator is one process in the trace.
TRACE_PID = 1

#: Track (tid) layout.  tid 0 carries wall-time spans; the cycle-domain
#: event tracks sit above it.
TID_SPANS = 0
TID_INTERVALS = 1
TID_DVM = 2
TID_ALLOC = 3
TID_FETCH = 4
TID_SWEEP = 5
#: Counter tracks (``"ph": "C"``) for AVF / occupancy / DVM state.
TID_COUNTERS = 6
#: Per-worker point tracks of the parallel harness sit above the fixed
#: tracks: worker *n* renders on tid ``TID_WORKER_BASE + n``.
TID_WORKER_BASE = 7

#: Topic-family → track for recorded decision events.
_TOPIC_TIDS: dict[str, int] = {
    "interval.close": TID_INTERVALS,
    "dvm.sample": TID_DVM,
    "dvm.trigger": TID_DVM,
    "dvm.ratio": TID_DVM,
    "dvm.throttle": TID_DVM,
    "dvm.restore": TID_DVM,
    "iql.cap": TID_ALLOC,
    "flush.switch": TID_ALLOC,
    "fetch.flush": TID_FETCH,
    "perf.span": TID_SPANS,
    "harness.point": TID_SWEEP,
    "reliability.attribution": TID_COUNTERS,
    "reliability.rf": TID_COUNTERS,
    "reliability.late_ace": TID_COUNTERS,
    "reliability.estimate": TID_COUNTERS,
    "reliability.divergence": TID_COUNTERS,
}

_TRACK_NAMES: dict[int, str] = {
    TID_SPANS: "spans (wall time)",
    TID_INTERVALS: "intervals",
    TID_DVM: "dvm decisions",
    TID_ALLOC: "iq allocation",
    TID_FETCH: "fetch policy",
    TID_SWEEP: "sweep points",
    TID_COUNTERS: "reliability counters",
}


def _track_name(tid: int) -> str:
    if tid >= TID_WORKER_BASE:
        return f"sweep worker {tid - TID_WORKER_BASE}"
    return _TRACK_NAMES.get(tid, f"track {tid}")


def _json_safe(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return repr(value)


def span_events(
    spans: Iterable[SpanRecord], *, pid: int = TRACE_PID
) -> list[dict[str, Any]]:
    """Complete (``"X"``) events for a span list."""
    return [
        {
            "name": s.name,
            "cat": s.cat,
            "ph": "X",
            "ts": s.ts_us,
            "dur": max(s.dur_us, 0.0),
            "pid": pid,
            "tid": s.tid,
            "args": _json_safe(s.args),
        }
        for s in spans
    ]


def recorded_events(
    events: Iterable[RecordedEvent],
    *,
    cycle_us: float = 1.0,
    pid: int = TRACE_PID,
) -> list[dict[str, Any]]:
    """Cycle-domain trace events for a recorded decision timeline."""
    if cycle_us <= 0:
        raise ValueError("cycle_us must be positive")
    out: list[dict[str, Any]] = []
    for ev in events:
        tid = _TOPIC_TIDS.get(ev.topic, TID_FETCH)
        args = _json_safe(dict(ev.payload))
        if not isinstance(args, dict):  # pragma: no cover - dict in, dict out
            args = {"payload": args}
        args["stage"] = ev.stage
        if "_worker" in ev.payload:
            # Relayed from a pool worker (see TimelineRecorder): the
            # event belongs on that worker's *wall-time* track, next to
            # its point slices, at its parent-arrival ms — mixing each
            # worker's private cycle domain onto the shared cycle
            # tracks would interleave unrelated runs.
            out.append(
                {
                    "name": ev.topic,
                    "cat": "relay",
                    "ph": "i",
                    "s": "t",
                    "ts": float(ev.payload.get("_ms", 0.0)) * 1000.0,
                    "pid": pid,
                    "tid": TID_WORKER_BASE + int(ev.payload["_worker"]),
                    "args": args,
                }
            )
        elif ev.topic == "interval.close":
            # Intervals close at (index+1)*L cycles; recover L from the
            # payload so each interval renders as a slice, not a point.
            index = int(ev.payload.get("index", 0))
            end_cycle = int(ev.payload.get("end_cycle", ev.cycle + 1))
            length = max(1, end_cycle // (index + 1))
            out.append(
                {
                    "name": f"interval {index}",
                    "cat": "interval",
                    "ph": "X",
                    "ts": (end_cycle - length) * cycle_us,
                    "dur": length * cycle_us,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
        elif ev.topic == "harness.point":
            # Parallel-harness points live in the *wall-time* domain
            # (payload ms since sweep start), not the cycle domain: a
            # completed point is a slice on its worker's track, every
            # other status (cached/retry/skipped) an instant on the
            # sweep summary track.
            status = str(ev.payload.get("status", ""))
            worker = int(ev.payload.get("worker", -1))
            ts_us = float(ev.payload.get("start_ms", 0.0)) * 1000.0
            if status == "done" and worker >= 0:
                out.append(
                    {
                        "name": str(ev.payload.get("label", "point")),
                        "cat": "harness",
                        "ph": "X",
                        "ts": ts_us,
                        "dur": float(ev.payload.get("elapsed_ms", 0.0)) * 1000.0,
                        "pid": pid,
                        "tid": TID_WORKER_BASE + worker,
                        "args": args,
                    }
                )
            else:
                out.append(
                    {
                        "name": f"{ev.payload.get('label', 'point')} [{status}]",
                        "cat": "harness",
                        "ph": "i",
                        "s": "t",
                        "ts": ts_us,
                        "pid": pid,
                        "tid": TID_SWEEP,
                        "args": args,
                    }
                )
        else:
            out.append(
                {
                    "name": ev.topic,
                    "cat": "decision",
                    "ph": "i",
                    "s": "t",
                    "ts": ev.cycle * cycle_us,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
    return out


def counter_events(
    events: Iterable[RecordedEvent],
    *,
    cycle_us: float = 1.0,
    pid: int = TRACE_PID,
) -> list[dict[str, Any]]:
    """Counter (``"C"``) events: AVF, IQ occupancy and DVM state tracks.

    Rendered by Perfetto/about:tracing as stacked area charts alongside
    the slice tracks.  Sources, all in the cycle time domain:

    * ``interval.close`` → "online avf" (iq/rob series), "iq occupancy"
      (ready/waiting series) and "iq limit", sampled at each interval's
      end cycle;
    * ``dvm.sample`` → "dvm" (estimate and wq_ratio);
    * ``reliability.divergence`` → "<structure> avf" (oracle vs online),
      emitted at end of run but timestamped at each interval's end.
    """
    if cycle_us <= 0:
        raise ValueError("cycle_us must be positive")

    def counter(name: str, ts_cycles: float, series: dict[str, float]) -> dict[str, Any]:
        return {
            "name": name,
            "cat": "reliability",
            "ph": "C",
            "ts": ts_cycles * cycle_us,
            "pid": pid,
            "tid": TID_COUNTERS,
            "args": {k: float(v) for k, v in series.items()},
        }

    out: list[dict[str, Any]] = []
    for ev in events:
        p = ev.payload
        if "_worker" in p:
            # Relayed events live in their worker's private cycle
            # domain; folding them into the shared counter tracks would
            # interleave unrelated runs' x-axes.
            continue
        if ev.topic == "interval.close":
            end = float(p.get("end_cycle", ev.cycle))
            out.append(
                counter(
                    "online avf",
                    end,
                    {
                        "iq": p.get("online_avf_estimate", 0.0),
                        "rob": p.get("online_rob_estimate", 0.0),
                    },
                )
            )
            out.append(
                counter(
                    "iq occupancy",
                    end,
                    {
                        "ready": p.get("avg_ready_queue_len", 0.0),
                        "waiting": p.get("avg_waiting_queue_len", 0.0),
                    },
                )
            )
            out.append(counter("iq limit", end, {"limit": p.get("iq_limit", 0)}))
        elif ev.topic == "dvm.sample":
            out.append(
                counter(
                    "dvm",
                    float(ev.cycle),
                    {
                        "estimate": p.get("estimate", 0.0),
                        "wq_ratio": p.get("wq_ratio", 0.0),
                    },
                )
            )
        elif ev.topic == "reliability.divergence":
            out.append(
                counter(
                    f"{p.get('structure', 'iq')} avf",
                    float(p.get("end_cycle", ev.cycle)),
                    {
                        "oracle": p.get("oracle_avf", 0.0),
                        "online": p.get("online_estimate", 0.0),
                    },
                )
            )
    return out


def metadata_events(
    tids: Iterable[int], *, pid: int = TRACE_PID, process_name: str = "repro"
) -> list[dict[str, Any]]:
    """``"M"`` events naming the process and each used track."""
    out: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for tid in sorted(set(tids)):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": _track_name(tid)},
            }
        )
    return out


def build_trace(
    spans: Sequence[SpanRecord] | None = None,
    recorded: Sequence[RecordedEvent] | None = None,
    *,
    cycle_us: float = 1.0,
    manifest: RunManifest | None = None,
    extra: Mapping[str, Any] | None = None,
    counters: bool = True,
) -> dict[str, Any]:
    """Assemble the Chrome trace JSON-object document.

    ``counters=True`` (the default) additionally lays recorded
    interval/DVM/divergence events out as ``"C"`` counter tracks.
    """
    events: list[dict[str, Any]] = []
    if spans:
        events.extend(span_events(spans))
    if recorded:
        events.extend(recorded_events(recorded, cycle_us=cycle_us))
        if counters:
            events.extend(counter_events(recorded, cycle_us=cycle_us))
    used_tids = {int(e["tid"]) for e in events} or {TID_SPANS}
    events = metadata_events(used_tids) + events
    other: dict[str, Any] = {"cycle_us": cycle_us, **dict(extra or {})}
    if manifest is not None:
        other["manifest"] = manifest.to_dict()
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": _json_safe(other),
    }


def write_chrome_trace(
    path: str,
    *,
    spans: Sequence[SpanRecord] | None = None,
    recorded: Sequence[RecordedEvent] | None = None,
    cycle_us: float = 1.0,
    manifest: RunManifest | None = None,
    extra: Mapping[str, Any] | None = None,
    counters: bool = True,
) -> int:
    """Write a trace file; returns the number of non-metadata events."""
    doc = build_trace(
        spans, recorded, cycle_us=cycle_us, manifest=manifest, extra=extra,
        counters=counters,
    )
    with open(path, "w") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    return sum(1 for e in doc["traceEvents"] if e.get("ph") != "M")


# ----------------------------------------------------------------------
# Validation (used by the tests and the CI artifact step)
# ----------------------------------------------------------------------
_REQUIRED_KEYS: dict[str, tuple[str, ...]] = {
    "X": ("name", "ts", "dur", "pid", "tid"),
    "i": ("name", "ts", "pid", "tid", "s"),
    "M": ("name", "pid", "tid", "args"),
    "C": ("name", "ts", "pid", "args"),
}


def validate_trace(doc: Mapping[str, Any]) -> dict[str, int]:
    """Check a trace document's schema and span nesting.

    Raises :class:`ValueError` on the first malformed event: unknown or
    missing phase, missing required keys, negative duration, a counter
    (``"C"``) whose ``args`` is not a mapping of numeric series values,
    or two complete events on one track that overlap without one
    containing the other (ill-formed nesting; counters are value
    samples, not slices, so they are exempt).  Returns per-phase event
    counts.
    """
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document has no traceEvents list")
    counts: dict[str, int] = {}
    tracks: dict[tuple[int, int], list[tuple[float, float]]] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, Mapping):
            raise ValueError(f"traceEvents[{i}] is not an object")
        ph = ev.get("ph")
        if not isinstance(ph, str) or ph not in _REQUIRED_KEYS:
            raise ValueError(f"traceEvents[{i}]: unsupported phase {ph!r}")
        for key in _REQUIRED_KEYS[ph]:
            if key not in ev:
                raise ValueError(f"traceEvents[{i}] ({ph!r}): missing {key!r}")
        counts[ph] = counts.get(ph, 0) + 1
        if ph == "C":
            args = ev.get("args")
            if not isinstance(args, Mapping) or not args:
                raise ValueError(
                    f"traceEvents[{i}] (counter): args must be a non-empty "
                    f"mapping of series values, got {args!r}"
                )
            for series, value in args.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise ValueError(
                        f"traceEvents[{i}] (counter {ev.get('name')!r}): "
                        f"series {series!r} has non-numeric value {value!r}"
                    )
        if ph == "X":
            ts, dur = float(ev["ts"]), float(ev["dur"])
            if dur < 0:
                raise ValueError(f"traceEvents[{i}]: negative duration {dur}")
            tracks.setdefault((int(ev["pid"]), int(ev["tid"])), []).append((ts, dur))
    eps = 1e-6
    for (pid, tid), slices in tracks.items():
        # Longer slice first at equal start so parents precede children.
        slices.sort(key=lambda s: (s[0], -s[1]))
        stack: list[float] = []  # open-slice end times
        for ts, dur in slices:
            while stack and stack[-1] <= ts + eps:
                stack.pop()
            end = ts + dur
            if stack and end > stack[-1] + eps:
                raise ValueError(
                    f"ill-formed nesting on pid={pid} tid={tid}: slice "
                    f"[{ts}, {end}] overlaps its enclosing slice ending "
                    f"at {stack[-1]}"
                )
            stack.append(end)
    return counts


def read_trace(path: str) -> dict[str, Any]:
    """Load a trace document written by :func:`write_chrome_trace`."""
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: not a Chrome trace JSON object")
    return doc
