"""Hierarchical span tracer: nested wall-time spans, pay-only-when-used.

A :class:`SpanTracer` records nested ``(name, category, start, duration)``
spans — benchmark cases, lint-engine phases, pipeline cycles/stages —
for Chrome trace-event export (:mod:`repro.perf.chrome_trace`).  Two
properties keep it safe to wire permanently into instrumented code:

* **Explicit opt-in.**  Nothing creates spans unless a tracer object is
  passed in; un-traced paths contain no clock reads at all (the same
  discipline as :class:`~repro.telemetry.profiler.StageProfiler`).
* **Bus riding without bus taxing.**  When a tracer is constructed with
  an :class:`~repro.telemetry.bus.EventBus`, every closed span is also
  emitted on the ``perf.span`` topic so live observers (recorders,
  tests) can watch; the ``wants()`` check is cached against
  ``bus.version``, so with no subscriber a closed span costs one
  integer compare beyond the record append.

Timestamps are microseconds relative to the tracer's construction —
the native unit of the Chrome trace-event format.

Wall-clock reads are this module's purpose; span output must never
feed back into simulated results.
"""
# lint: disable-file=determinism

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.telemetry.bus import EventBus
from repro.telemetry.profiler import StageProfiler
from repro.telemetry.topics import TOPIC_PERF_SPAN


@dataclass(frozen=True)
class SpanRecord:
    """One closed span, ready for trace export."""

    name: str
    cat: str
    ts_us: float
    dur_us: float
    depth: int
    tid: int = 0
    args: dict[str, Any] = field(default_factory=dict)


class _SpanHandle:
    """Reusable context manager closing the innermost open span."""

    __slots__ = ("_tracer",)

    def __init__(self, tracer: "SpanTracer"):
        self._tracer = tracer

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        self._tracer.end()


class SpanTracer:
    """Collects nested spans; optionally mirrors them onto an event bus."""

    def __init__(
        self,
        bus: EventBus | None = None,
        *,
        limit: int = 1_000_000,
        tid: int = 0,
    ):
        if limit <= 0:
            raise ValueError("limit must be positive")
        self._t0 = time.perf_counter()
        self.spans: list[SpanRecord] = []
        self.dropped = 0
        self.limit = limit
        self.tid = tid
        self.bus = bus
        self._stack: list[tuple[str, str, float, dict[str, Any]]] = []
        self._handle = _SpanHandle(self)
        self._bus_version = -1
        self._want_span = False

    # ------------------------------------------------------------------
    def now_us(self) -> float:
        """Microseconds since the tracer's origin."""
        return (time.perf_counter() - self._t0) * 1e6

    def to_us(self, perf_counter_s: float) -> float:
        """Convert an absolute ``perf_counter()`` reading to tracer µs."""
        return (perf_counter_s - self._t0) * 1e6

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    # ------------------------------------------------------------------
    def span(self, name: str, cat: str = "perf", **args: Any) -> _SpanHandle:
        """Open a span; use as ``with tracer.span("phase"): ...``."""
        self._stack.append((name, cat, self.now_us(), args))
        return self._handle

    def begin(self, name: str, cat: str = "perf", **args: Any) -> None:
        """Imperative form of :meth:`span` (paired with :meth:`end`)."""
        self._stack.append((name, cat, self.now_us(), args))

    def end(self, **extra_args: Any) -> SpanRecord | None:
        """Close the innermost open span and record it."""
        if not self._stack:
            raise RuntimeError("SpanTracer.end() with no open span")
        name, cat, start, args = self._stack.pop()
        if extra_args:
            args = {**args, **extra_args}
        record = SpanRecord(
            name=name,
            cat=cat,
            ts_us=start,
            dur_us=self.now_us() - start,
            depth=len(self._stack),
            tid=self.tid,
            args=args,
        )
        self.record(record)
        return record

    def record(self, record: SpanRecord) -> None:
        """Append an externally built span (e.g. from a profiler)."""
        if len(self.spans) >= self.limit:
            self.dropped += 1
            return
        self.spans.append(record)
        bus = self.bus
        if bus is not None:
            if bus.version != self._bus_version:
                self._bus_version = bus.version
                self._want_span = bus.wants(TOPIC_PERF_SPAN)
            if self._want_span:
                bus.emit(
                    TOPIC_PERF_SPAN,
                    name=record.name,
                    cat=record.cat,
                    ts_us=record.ts_us,
                    dur_us=record.dur_us,
                    depth=record.depth,
                )

    def clear(self) -> None:
        self.spans.clear()
        self.dropped = 0
        self._stack.clear()


class TracingProfiler(StageProfiler):
    """A :class:`StageProfiler` that additionally records cycle/stage spans.

    Drop-in for the pipeline's ``profiler=`` hook: ``lap()`` timing is
    inherited unchanged, and for the first ``max_traced_cycles`` cycles
    each cycle becomes a depth-0 span with its six stages as depth-1
    children — the hierarchy Perfetto renders as nested slices.  The
    bound keeps trace memory proportional to the traced prefix, not the
    run length (the aggregate profile still covers every cycle).
    """

    def __init__(
        self,
        tracer: SpanTracer | None = None,
        *,
        max_traced_cycles: int = 2_000,
    ):
        super().__init__()
        if max_traced_cycles < 0:
            raise ValueError("max_traced_cycles must be >= 0")
        self.tracer = tracer if tracer is not None else SpanTracer()
        self.max_traced_cycles = max_traced_cycles
        self.traced_cycles = 0
        self._laps: list[tuple[str, float, float]] = []
        self._tracing_cycle = False

    # ------------------------------------------------------------------
    def cycle_start(self) -> None:
        self._flush_cycle()
        super().cycle_start()
        self._tracing_cycle = self.traced_cycles < self.max_traced_cycles

    def lap(self, stage: str) -> None:
        prev = self._mark
        super().lap(stage)
        if self._tracing_cycle:
            tracer = self.tracer
            self._laps.append((stage, tracer.to_us(prev), tracer.to_us(self._mark)))

    def end_run(self) -> None:
        self._flush_cycle()
        super().end_run()

    # ------------------------------------------------------------------
    def _flush_cycle(self) -> None:
        """Turn the previous cycle's laps into one cycle span + children."""
        if self._tracing_cycle and self._laps:
            index = self.cycles - 1  # the cycle the laps belong to
            start = self._laps[0][1]
            end = self._laps[-1][2]
            tracer = self.tracer
            tracer.record(
                SpanRecord(
                    name="cycle",
                    cat="cycle",
                    ts_us=start,
                    dur_us=end - start,
                    depth=0,
                    tid=tracer.tid,
                    args={"index": index},
                )
            )
            for stage, s_us, e_us in self._laps:
                tracer.record(
                    SpanRecord(
                        name=stage,
                        cat="stage",
                        ts_us=s_us,
                        dur_us=e_us - s_us,
                        depth=1,
                        tid=tracer.tid,
                    )
                )
            self.traced_cycles += 1
        self._laps.clear()
        self._tracing_cycle = False
