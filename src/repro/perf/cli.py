"""``repro perf`` — run / compare / trace.

``run``      execute the hot-path suite, append a provenance-stamped
             entry to ``BENCH_perf.json``
``compare``  execute (or load) current results and gate them against
             the committed history; exit 1 on regression
``trace``    simulate one mix with the span-tracing profiler and export
             a Chrome trace (stage spans + controller decisions)

Examples::

    python -m repro perf run --repeats 3
    python -m repro perf compare --tolerance 0.25
    python -m repro perf compare --results perf-current.json --tolerance 1.0
    python -m repro perf trace --mix MEM-A --dvm 0.5 --dispatch opt2 -o trace.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Any

from repro.harness.runner import BenchScale
from repro.perf import history as perf_history
from repro.perf.bench import (
    BENCH_NAMES,
    PERF_SCALE,
    format_results,
    run_benchmarks,
)
from repro.perf.chrome_trace import write_chrome_trace
from repro.perf.compare import compare_results
from repro.perf.spans import SpanTracer, TracingProfiler
from repro.telemetry.provenance import collect_manifest
from repro.workloads import MIXES


def _suite_scale(args: argparse.Namespace) -> BenchScale:
    scale = PERF_SCALE
    if getattr(args, "cycles", None):
        scale = dataclasses.replace(
            scale,
            max_cycles=args.cycles,
            warmup_cycles=min(scale.warmup_cycles, args.cycles // 5),
        )
    return scale


def _suite_manifest(args: argparse.Namespace, scale: BenchScale) -> Any:
    return collect_manifest(
        sim=scale.sim_config(),
        seed=scale.seed,
        extra={
            "tool": "repro perf",
            "bench_scale": dataclasses.asdict(scale),
            "repeats": args.repeats,
        },
    )


def _save_results_json(path: str, results: dict[str, Any]) -> None:
    doc = {"results": {name: r.to_dict() for name, r in results.items()}}
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def cmd_perf_run(args: argparse.Namespace) -> int:
    scale = _suite_scale(args)
    results = run_benchmarks(args.bench or None, scale=scale, repeats=args.repeats)
    print(format_results(results))
    if args.out:
        _save_results_json(args.out, results)
        print(f"results saved to {args.out}")
    if not args.no_history:
        entry = perf_history.append_entry(
            args.history,
            results,
            manifest=_suite_manifest(args, scale),
            context={"repeats": args.repeats, "partial": bool(args.bench)},
        )
        print(
            f"appended {entry['kind']} entry ({len(entry['results'])} cases) "
            f"to {args.history}"
        )
    return 0


def cmd_perf_compare(args: argparse.Namespace) -> int:
    try:
        history = perf_history.load_history(args.history)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.results:
        with open(args.results) as fh:
            doc = json.load(fh)
        current: dict[str, Any] = doc.get("results", doc)
    else:
        scale = _suite_scale(args)
        current = run_benchmarks(args.bench or None, scale=scale, repeats=args.repeats)
        if args.out:
            _save_results_json(args.out, current)
            print(f"results saved to {args.out}")
    report = compare_results(
        history, current, tolerance=args.tolerance, window=args.window
    )
    print(report.format())
    return 0 if report.ok else 1


def cmd_perf_trace(args: argparse.Namespace) -> int:
    # Imported lazily: trace pulls in the full simulation stack.
    from repro.harness.runner import run_recorded, run_sim

    scale = BenchScale.from_env()
    if args.cycles:
        scale = dataclasses.replace(
            scale,
            max_cycles=args.cycles,
            warmup_cycles=(
                args.cycles // 5
                if args.cycles <= scale.warmup_cycles
                else scale.warmup_cycles
            ),
        )
    dvm_target = None
    if args.dvm is not None:
        base = run_sim(args.mix, scale, fetch_policy=args.fetch_policy)
        dvm_target = args.dvm * base.max_online_estimate
    profiler = TracingProfiler(
        SpanTracer(), max_traced_cycles=args.traced_cycles
    )
    result, recorder, profile = run_recorded(
        args.mix,
        scale,
        fetch_policy=args.fetch_policy,
        scheduler=args.scheduler,
        dispatch=args.dispatch,
        dvm_target=dvm_target,
        profiler=profiler,
    )
    assert profile is not None  # run_recorded reports the passed profiler
    # Map the cycle-domain decision tracks onto the wall-time span track
    # using the run's mean cycle duration, so both land on one timeline.
    cycle_us = (
        profile.wall_s / profile.cycles * 1e6 if profile.cycles > 0 else 1.0
    )
    n = write_chrome_trace(
        args.out,
        spans=profiler.tracer.spans,
        recorded=recorder.events,
        cycle_us=cycle_us,
        manifest=result.manifest,
        extra={
            "mix": args.mix,
            "traced_cycles": profiler.traced_cycles,
            "cycles": result.cycles,
        },
    )
    print(
        f"wrote {n} trace events ({len(profiler.tracer.spans)} spans over "
        f"{profiler.traced_cycles} cycles, {len(recorder.events)} recorded "
        f"events) to {args.out}"
    )
    if args.ranking_out:
        from repro.perf.chrome_trace import read_trace
        from repro.perf.ranking import write_span_ranking

        count = write_span_ranking(args.ranking_out, read_trace(args.out))
        print(f"wrote measured span ranking ({count} names) to {args.ranking_out}")
    print(profile.format())
    return 0


def register_perf_cli(sub: argparse._SubParsersAction) -> None:
    """Attach the ``perf`` command tree to the top-level subparsers."""
    p_perf = sub.add_parser(
        "perf", help="performance observability: bench suite, gate, tracing"
    )
    perf_sub = p_perf.add_subparsers(dest="perf_command", required=True)

    p_run = perf_sub.add_parser(
        "run", help="run the hot-path suite and append to BENCH_perf.json"
    )
    p_cmp = perf_sub.add_parser(
        "compare", help="gate current results against the committed history"
    )
    for p in (p_run, p_cmp):
        p.add_argument(
            "--bench", action="append", choices=sorted(BENCH_NAMES), default=None,
            metavar="NAME", help="run only this case (repeatable; default: all)",
        )
        p.add_argument("--repeats", type=int, default=3,
                       help="timed repeats per case, min is kept (default 3)")
        p.add_argument("--cycles", type=int, default=None,
                       help="override the pinned pipeline-case cycle budget")
        p.add_argument("--history", default=perf_history.DEFAULT_HISTORY_PATH,
                       metavar="PATH", help="history file (default BENCH_perf.json)")
        p.add_argument("--out", metavar="PATH", default=None,
                       help="also save this run's results as JSON")
    p_run.add_argument("--no-history", action="store_true",
                       help="measure and print only; do not append an entry")
    p_run.set_defaults(func=cmd_perf_run)

    p_cmp.add_argument("--tolerance", type=float, default=0.25,
                       help="allowed relative slowdown (default 0.25 = 25%%)")
    p_cmp.add_argument("--window", type=int, default=5,
                       help="history entries forming the baseline (default 5)")
    p_cmp.add_argument("--results", metavar="PATH", default=None,
                       help="compare a saved results JSON instead of re-running")
    p_cmp.set_defaults(func=cmd_perf_compare)

    p_tr = perf_sub.add_parser(
        "trace", help="export a Chrome trace (Perfetto) of one simulation"
    )
    p_tr.add_argument("--mix", default="MEM-A", choices=sorted(MIXES))
    p_tr.add_argument("--fetch-policy", default="icount",
                      choices=["icount", "stall", "flush", "dg", "pdg", "rr"])
    p_tr.add_argument("--scheduler", default="oldest", choices=["oldest", "visa"])
    p_tr.add_argument("--dispatch", default=None,
                      choices=["opt1", "opt1-linear", "opt2"])
    p_tr.add_argument("--dvm", type=float, default=None, metavar="FRAC",
                      help="enable DVM targeting FRAC * baseline MaxAVF")
    p_tr.add_argument("--cycles", type=int, default=None)
    p_tr.add_argument("--traced-cycles", type=int, default=2_000,
                      help="cycles to record stage spans for (default 2000)")
    p_tr.add_argument("-o", "--out", metavar="PATH", default="repro-trace.json",
                      help="output trace file (default repro-trace.json)")
    p_tr.add_argument("--ranking-out", metavar="PATH", default=None,
                      help="also export the measured span ranking as JSON "
                      "(the ground truth for `repro lint hotpaths "
                      "--validate-spans`)")
    p_tr.set_defaults(func=cmd_perf_trace)
