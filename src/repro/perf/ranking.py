"""Measured span ranking extracted from Chrome trace documents.

The static cost model (:mod:`repro.analysis.perfmodel`) validates
itself against measurement; this module is the measurement side: given
a trace document (or file) written by ``repro perf trace`` /
``repro.lint --trace-out``, it aggregates complete-event durations per
span name and orders them descending — the ground-truth ranking that
``repro lint hotpaths --validate-spans`` correlates against.  ``repro
perf trace --ranking-out`` exports it as JSON so CI can archive the
measured ranking next to the trace artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

#: Categories whose complete events measure code wall time.
MEASURED_CATS = frozenset({"cycle", "stage", "bench", "perf"})


@dataclass(frozen=True)
class SpanAggregate:
    """Total measured time of one span name."""

    name: str
    cat: str
    total_us: float
    count: int

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "cat": self.cat,
            "total_us": self.total_us,
            "count": self.count,
        }


def span_ranking(doc: Mapping[str, Any]) -> list[SpanAggregate]:
    """Measured span names by descending total duration."""
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document has no traceEvents list")
    totals: dict[str, list] = {}
    for ev in events:
        if not isinstance(ev, Mapping) or ev.get("ph") != "X":
            continue
        cat = str(ev.get("cat", ""))
        if cat not in MEASURED_CATS:
            continue
        name = str(ev.get("name", ""))
        acc = totals.setdefault(name, [cat, 0.0, 0])
        acc[1] += float(ev.get("dur", 0.0))
        acc[2] += 1
    ranked = [
        SpanAggregate(name=name, cat=acc[0], total_us=acc[1], count=acc[2])
        for name, acc in totals.items()
    ]
    ranked.sort(key=lambda a: (-a.total_us, a.name))
    return ranked


def write_span_ranking(path: str, doc: Mapping[str, Any]) -> int:
    """Write the ranking JSON next to a trace; returns the entry count."""
    ranked = span_ranking(doc)
    payload = {"ranking": [a.to_dict() for a in ranked]}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(ranked)
