"""Regression comparator: current suite results vs. the history window.

The baseline for a case is the **minimum** ``best_s`` over the last
``window`` suite entries that carry a finite positive value for it —
the same min-of-N philosophy as the measurement itself, and robust to
one noisy historical entry.  A case regresses when

    current > baseline * (1 + tolerance)

and improves when ``current < baseline * (1 - tolerance)``; inside the
band it is ``ok``.  Cases with no usable baseline (empty history, a
newly added benchmark, NaN/zero historical values) are ``new`` and
never fail the gate; a non-finite *current* measurement is ``invalid``
and always fails it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

from repro.perf.history import KIND_PERF_SUITE, entries_of_kind

STATUS_OK = "ok"
STATUS_REGRESSION = "regression"
STATUS_IMPROVEMENT = "improvement"
STATUS_NEW = "new"
STATUS_INVALID = "invalid"


def _valid_seconds(value: Any) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value) and value > 0


def _current_seconds(value: Any) -> float:
    """Extract seconds from a BenchResult / mapping / bare number."""
    if hasattr(value, "best_s"):
        return float(value.best_s)
    if isinstance(value, Mapping):
        return float(value.get("best_s", math.nan))
    try:
        return float(value)
    except (TypeError, ValueError):
        return math.nan


@dataclass(frozen=True)
class CaseComparison:
    """One case's verdict against its history baseline."""

    name: str
    status: str
    current_s: float
    baseline_s: float | None = None

    @property
    def ratio(self) -> float | None:
        """current/baseline (>1 = slower); None without a baseline."""
        if self.baseline_s is None or self.baseline_s <= 0:
            return None
        return self.current_s / self.baseline_s


@dataclass(frozen=True)
class ComparisonReport:
    """Whole-suite comparison outcome."""

    cases: tuple[CaseComparison, ...]
    tolerance: float
    window: int

    @property
    def regressions(self) -> tuple[CaseComparison, ...]:
        return tuple(c for c in self.cases if c.status == STATUS_REGRESSION)

    @property
    def invalid(self) -> tuple[CaseComparison, ...]:
        return tuple(c for c in self.cases if c.status == STATUS_INVALID)

    @property
    def ok(self) -> bool:
        """True when the gate passes (no regression, nothing invalid)."""
        return not self.regressions and not self.invalid

    def format(self) -> str:
        lines = [
            f"perf comparison (tolerance ±{self.tolerance * 100:.0f}%, "
            f"baseline = min of last {self.window} entries)"
        ]
        width = max((len(c.name) for c in self.cases), default=4)
        for c in self.cases:
            cur = f"{c.current_s * 1e3:10.2f} ms"
            if c.baseline_s is None:
                base, delta = "          -", "    -"
            else:
                base = f"{c.baseline_s * 1e3:10.2f} ms"
                delta = f"{(c.ratio - 1) * 100:+5.1f}%" if c.ratio is not None else "    -"
            lines.append(
                f"  {c.name:<{width}s}  {cur}  vs {base}  {delta}  [{c.status}]"
            )
        verdict = "PASS" if self.ok else "FAIL"
        n_reg, n_inv = len(self.regressions), len(self.invalid)
        lines.append(
            f"{verdict}: {n_reg} regression(s), {n_inv} invalid, "
            f"{sum(1 for c in self.cases if c.status == STATUS_NEW)} new"
        )
        return "\n".join(lines)


def baseline_seconds(
    history: Mapping[str, Any],
    name: str,
    *,
    window: int = 5,
    kind: str = KIND_PERF_SUITE,
) -> float | None:
    """Min ``best_s`` for ``name`` over the last ``window`` entries.

    Entries missing the case, and NaN/zero/negative values, are
    skipped; returns None when no usable value exists.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    values: list[float] = []
    for entry in entries_of_kind(history, kind)[-window:]:
        result = entry.get("results", {}).get(name)
        value = result.get("best_s") if isinstance(result, Mapping) else result
        if _valid_seconds(value):
            values.append(float(value))
    return min(values) if values else None


def compare_results(
    history: Mapping[str, Any],
    current: Mapping[str, Any],
    *,
    tolerance: float = 0.25,
    window: int = 5,
    kind: str = KIND_PERF_SUITE,
) -> ComparisonReport:
    """Compare ``current`` suite results against the history window."""
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    cases: list[CaseComparison] = []
    for name in sorted(current):
        cur_s = _current_seconds(current[name])
        base_s = baseline_seconds(history, name, window=window, kind=kind)
        if not _valid_seconds(cur_s):
            status = STATUS_INVALID
        elif base_s is None:
            status = STATUS_NEW
        elif cur_s > base_s * (1 + tolerance):
            status = STATUS_REGRESSION
        elif cur_s < base_s * (1 - tolerance):
            status = STATUS_IMPROVEMENT
        else:
            status = STATUS_OK
        cases.append(CaseComparison(name, status, cur_s, base_s))
    return ComparisonReport(tuple(cases), tolerance, window)
