"""repro.perf — performance observability for the simulator.

Layers (see the "Performance observability" section of
``docs/observability.md``):

* :mod:`repro.perf.spans` — hierarchical :class:`SpanTracer` (rides
  the telemetry bus via the ``perf.span`` topic when observed) and
  :class:`TracingProfiler`, the span-recording stage profiler;
* :mod:`repro.perf.chrome_trace` — Chrome trace-event JSON export
  (Perfetto / about:tracing) plus schema/nesting validation;
* :mod:`repro.perf.bench` — the deterministic hot-path benchmark
  suite (min-of-N wall clock at the pinned :data:`PERF_SCALE`);
* :mod:`repro.perf.history` — the committed ``BENCH_perf.json``
  trajectory of provenance-stamped entries;
* :mod:`repro.perf.compare` — the regression comparator gating
  current results against the history window;
* :mod:`repro.perf.cli` — the ``repro perf run/compare/trace``
  commands.
"""

from repro.perf.bench import (
    BENCH_CASES,
    BENCH_NAMES,
    PERF_SCALE,
    BenchCase,
    BenchResult,
    format_results,
    run_benchmarks,
)
from repro.perf.chrome_trace import (
    build_trace,
    read_trace,
    validate_trace,
    write_chrome_trace,
)
from repro.perf.compare import (
    CaseComparison,
    ComparisonReport,
    baseline_seconds,
    compare_results,
)
from repro.perf.history import (
    DEFAULT_HISTORY_PATH,
    append_entry,
    entries_of_kind,
    load_history,
    make_entry,
)
from repro.perf.spans import SpanRecord, SpanTracer, TracingProfiler

__all__ = [
    "BENCH_CASES",
    "BENCH_NAMES",
    "PERF_SCALE",
    "BenchCase",
    "BenchResult",
    "format_results",
    "run_benchmarks",
    "build_trace",
    "read_trace",
    "validate_trace",
    "write_chrome_trace",
    "CaseComparison",
    "ComparisonReport",
    "baseline_seconds",
    "compare_results",
    "DEFAULT_HISTORY_PATH",
    "append_entry",
    "entries_of_kind",
    "load_history",
    "make_entry",
    "SpanRecord",
    "SpanTracer",
    "TracingProfiler",
]
