"""Dynamic Vulnerability Management (Section 5, Figure 7).

DVM keeps the runtime IQ AVF below a pre-set reliability target while
minimizing performance loss.  Mechanism (Section 5.1):

* An **online AVF estimate** comes from a hardware ACE-bit counter that
  accumulates the predicted-ACE bits resident in the IQ each cycle; the
  estimate is the counter divided by (cycles × total IQ bits).
* The estimate is sampled at fine granularity (5 samples per 10K-cycle
  interval) and compared against a **trigger threshold** set at 90% of
  the reliability target.
* When triggered, the **response mechanism** throttles dispatch so the
  ratio of waiting to ready instructions in the IQ stays below
  ``wq_ratio``; the ratio check is recomputed once every 50 cycles
  (integer division cost).  ``wq_ratio`` adapts slowly up / rapidly
  down ("slow increases and rapid decreases ... quick response to a
  vulnerability emergency").
* Any **L2 cache miss** enables the response mechanism immediately
  (dependent instructions would otherwise sit in the IQ for hundreds of
  cycles, inflating AVF).
* If **all threads are stalled** on L2 misses while the online AVF is
  below the trigger threshold, dispatch is restored for the thread with
  the fewest (predicted-)ACE instructions in its fetch queue — un-ACE
  instructions add ILP at little reliability cost.

``DVMController(static_ratio=...)`` gives the *DVM (static)* ablation
of Figure 10: the ratio is fixed instead of adapted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import ReliabilityConfig
from repro.telemetry.bus import EventBus
from repro.telemetry.topics import (
    TOPIC_DVM_RATIO,
    TOPIC_DVM_SAMPLE,
    TOPIC_DVM_TRIGGER,
    TOPIC_RELIABILITY_ESTIMATE,
)


@dataclass
class DVMStats:
    """Observable behaviour of the controller (for tests/experiments)."""

    samples: int = 0
    triggered_samples: int = 0
    l2_triggers: int = 0
    throttled_dispatch_checks: int = 0
    restore_grants: int = 0
    ratio_history: list[float] = field(default_factory=list)

    @property
    def mean_ratio(self) -> float:
        if not self.ratio_history:
            return 0.0
        return sum(self.ratio_history) / len(self.ratio_history)

    def clear(self) -> None:
        """Zero every field in place.

        ``DVMController.reset()`` clears the *same* object rather than
        rebinding ``self.stats`` so observers holding a reference (the
        harness, tests) keep seeing the live statistics instead of a
        stale pre-reset snapshot drifting away from the controller.
        """
        self.samples = 0
        self.triggered_samples = 0
        self.l2_triggers = 0
        self.throttled_dispatch_checks = 0
        self.restore_grants = 0
        self.ratio_history.clear()


class DVMController:
    """Runtime IQ vulnerability governor."""

    def __init__(
        self,
        reliability_target: float,
        config: ReliabilityConfig | None = None,
        static_ratio: float | None = None,
    ):
        if not (0.0 < reliability_target <= 1.0):
            raise ValueError("reliability_target must be an AVF in (0, 1]")
        self.config = config or ReliabilityConfig()
        self.config.validate()
        self.reliability_target = reliability_target
        self.trigger_threshold = reliability_target * self.config.dvm_trigger_fraction
        self.static_ratio = static_ratio
        self.wq_ratio = static_ratio if static_ratio is not None else self.config.wq_ratio_initial
        self.triggered = False
        self._dispatch_ok = True
        self.restore_thread: int | None = None
        self.stats = DVMStats()
        self.last_estimate = 0.0
        #: Telemetry spine; the pipeline replaces this with its shared
        #: bus so decisions carry cycle/stage stamps.  A private bus
        #: with no subscribers makes every emit a no-op.
        self.bus = EventBus()
        #: Which structure this controller governs ("iq", or "rob" for
        #: the ROB-DVM extension); tags ``reliability.estimate`` events.
        self.structure = "iq"

    @property
    def is_static(self) -> bool:
        return self.static_ratio is not None

    # ------------------------------------------------------------------
    # Trigger mechanism
    # ------------------------------------------------------------------
    def on_sample(self, est_avf: float) -> None:
        """Fine-grained online-AVF sample (5 per interval).

        Adapts ``wq_ratio`` (unless static) and arms/disarms the
        response mechanism.
        """
        self.stats.samples += 1
        self.last_estimate = est_avf
        cfg = self.config
        was_triggered = self.triggered
        old_ratio = self.wq_ratio
        if est_avf > self.trigger_threshold:
            self.triggered = True
            self.stats.triggered_samples += 1
            if not self.is_static:
                self.wq_ratio = max(
                    cfg.wq_ratio_min, self.wq_ratio * cfg.wq_ratio_decrease_factor
                )
        else:
            self.triggered = False
            if not self.is_static:
                self.wq_ratio = min(
                    cfg.wq_ratio_max, self.wq_ratio + cfg.wq_ratio_increase_step
                )
        self.stats.ratio_history.append(self.wq_ratio)
        bus = self.bus
        if bus.wants(TOPIC_DVM_SAMPLE):
            bus.emit(
                TOPIC_DVM_SAMPLE,
                estimate=est_avf,
                triggered=self.triggered,
                wq_ratio=self.wq_ratio,
            )
        if self.triggered and not was_triggered and bus.wants(TOPIC_DVM_TRIGGER):
            bus.emit(TOPIC_DVM_TRIGGER, reason="sample", estimate=est_avf)
        if self.wq_ratio != old_ratio and bus.wants(TOPIC_DVM_RATIO):
            bus.emit(
                TOPIC_DVM_RATIO,
                old_ratio=old_ratio,
                new_ratio=self.wq_ratio,
                direction="decrease" if self.wq_ratio < old_ratio else "increase",
            )
        if bus.wants(TOPIC_RELIABILITY_ESTIMATE):
            bus.emit(
                TOPIC_RELIABILITY_ESTIMATE,
                structure=self.structure,
                estimate=est_avf,
                threshold=self.trigger_threshold,
                triggered=self.triggered,
            )

    def on_l2_miss(self) -> None:
        """An L2 miss enables the response mechanism immediately."""
        was_triggered = self.triggered
        self.triggered = True
        self.stats.l2_triggers += 1
        if not was_triggered and self.bus.wants(TOPIC_DVM_TRIGGER):
            self.bus.emit(
                TOPIC_DVM_TRIGGER, reason="l2_miss", estimate=self.last_estimate
            )

    # ------------------------------------------------------------------
    # Response mechanism
    # ------------------------------------------------------------------
    def recompute_ratio_gate(self, waiting: int, ready: int) -> None:
        """The waiting/ready check, performed once per
        ``dvm_ratio_period`` cycles (integer-division cost, Section 5.1)."""
        self._dispatch_ok = waiting <= self.wq_ratio * max(ready, 1)

    def allow_dispatch(self, tid: int) -> bool:
        """May thread ``tid`` dispatch into the IQ this cycle?"""
        if not self.triggered:
            return True
        if self._dispatch_ok:
            return True
        self.stats.throttled_dispatch_checks += 1
        if tid == self.restore_thread:
            self.stats.restore_grants += 1
            return True
        return False

    def set_restore_thread(self, tid: int | None) -> None:
        """Pipeline-selected thread (fewest predicted-ACE instructions
        in its fetch queue) allowed to dispatch while all threads are
        L2-stalled and the online AVF is below the trigger threshold."""
        self.restore_thread = tid

    @property
    def restore_eligible(self) -> bool:
        """Restoration applies only while the estimate is back under the
        trigger threshold."""
        return self.last_estimate < self.trigger_threshold

    def reset(self) -> None:
        """Return to the power-on state: the adapted ratio, the armed
        response mechanism, the restore-thread pick and the ratio gate
        are all cleared, so the next sample re-arms the trigger from
        scratch.  Statistics are cleared *in place* (see
        :meth:`DVMStats.clear`) so references held by observers stay
        live instead of drifting against the controller."""
        self.wq_ratio = (
            self.static_ratio if self.static_ratio is not None
            else self.config.wq_ratio_initial
        )
        self.triggered = False
        self._dispatch_ok = True
        self.restore_thread = None
        self.last_estimate = 0.0
        self.stats.clear()
