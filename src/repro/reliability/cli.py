"""``repro avf`` — report / run / compare.

``report``   simulate one mix with the reliability observer attached
             and print (or save) the per-run vulnerability report:
             per-interval AVF, per-thread shares, residency histograms
             and the per-entry IQ heatmaps; optionally export a Chrome
             trace with AVF counter tracks
``run``      compute the headline reliability numbers (baseline IQ AVF,
             VISA+DVM reduction) and append a provenance-stamped entry
             to ``BENCH_reliability.json``
``compare``  recompute the headline numbers and gate them against the
             committed history's tolerance band; exit 1 on drift

Examples::

    python -m repro avf report --mix MEM-A --dvm 0.5
    python -m repro avf report --json -o avf-report.json --trace-out avf.json
    python -m repro avf run
    python -m repro avf compare --tolerance 0.05
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from repro.harness.runner import BenchScale
from repro.perf.history import load_history
from repro.reliability import gate
from repro.workloads import MIXES


def _scale(args: argparse.Namespace) -> BenchScale:
    scale = BenchScale.from_env()
    if getattr(args, "cycles", None):
        scale = dataclasses.replace(
            scale,
            max_cycles=args.cycles,
            warmup_cycles=min(scale.warmup_cycles, args.cycles // 5),
        )
    return scale


def cmd_avf_report(args: argparse.Namespace) -> int:
    # Imported lazily: report pulls in the full simulation stack.
    from repro.harness.runner import run_observed, run_sim

    scale = _scale(args)
    dvm_target = None
    if args.dvm is not None:
        base = run_sim(args.mix, scale, fetch_policy=args.fetch_policy)
        dvm_target = args.dvm * base.max_online_estimate
    result, observer, recorder = run_observed(
        args.mix,
        scale,
        fetch_policy=args.fetch_policy,
        scheduler=args.scheduler,
        dispatch=args.dispatch,
        dvm_target=dvm_target,
        record=bool(args.trace_out),
    )
    report = observer.report(result.cycles)
    if args.json:
        text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    else:
        text = report.format()
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
            fh.write("\n")
        print(f"vulnerability report saved to {args.out}")
    else:
        print(text)
    if args.trace_out:
        from repro.perf.chrome_trace import write_chrome_trace

        assert recorder is not None  # record=True above
        n = write_chrome_trace(
            args.trace_out,
            recorded=recorder.events,
            manifest=result.manifest,
            extra={"mix": args.mix, "cycles": result.cycles, "tool": "repro avf"},
        )
        print(f"wrote {n} trace events (AVF counter tracks) to {args.trace_out}")
    return 0


def cmd_avf_run(args: argparse.Namespace) -> int:
    scale = _scale(args)
    results = gate.headline_numbers(scale, mix=args.mix)
    for name in sorted(results):
        print(f"  {name:<18s} {results[name]:9.5f}")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump({"results": results}, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"results saved to {args.out}")
    if not args.no_history:
        entry = gate.record_reliability(
            args.history,
            results,
            context={
                "mix": args.mix,
                "max_cycles": scale.max_cycles,
                "seed": scale.seed,
            },
        )
        print(
            f"appended {entry['kind']} entry ({len(entry['results'])} numbers) "
            f"to {args.history}"
        )
    return 0


def cmd_avf_compare(args: argparse.Namespace) -> int:
    try:
        history = load_history(args.history)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.results:
        with open(args.results) as fh:
            doc = json.load(fh)
        current = {
            name: float(v["value"] if isinstance(v, dict) else v)
            for name, v in doc.get("results", doc).items()
        }
    else:
        scale = _scale(args)
        current = gate.headline_numbers(scale, mix=args.mix)
        if args.out:
            with open(args.out, "w") as fh:
                json.dump({"results": current}, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"results saved to {args.out}")
    report = gate.compare_reliability(
        history, current, tolerance=args.tolerance, window=args.window
    )
    print(report.format())
    return 0 if report.ok else 1


def register_avf_cli(sub: argparse._SubParsersAction) -> None:
    """Attach the ``avf`` command tree to the top-level subparsers."""
    p_avf = sub.add_parser(
        "avf", help="reliability observability: vulnerability report, drift gate"
    )
    avf_sub = p_avf.add_subparsers(dest="avf_command", required=True)

    p_rep = avf_sub.add_parser(
        "report", help="per-run vulnerability report (heatmaps, AVF series)"
    )
    p_rep.add_argument("--mix", default=gate.HEADLINE_MIX, choices=sorted(MIXES))
    p_rep.add_argument("--fetch-policy", default="icount",
                       choices=["icount", "stall", "flush", "dg", "pdg", "rr"])
    p_rep.add_argument("--scheduler", default="oldest", choices=["oldest", "visa"])
    p_rep.add_argument("--dispatch", default=None,
                       choices=["opt1", "opt1-linear", "opt2"])
    p_rep.add_argument("--dvm", type=float, default=None, metavar="FRAC",
                       help="enable DVM targeting FRAC * baseline MaxAVF")
    p_rep.add_argument("--cycles", type=int, default=None,
                       help="override the cycle budget")
    p_rep.add_argument("--json", action="store_true",
                       help="emit the JSON report instead of the text rendering")
    p_rep.add_argument("-o", "--out", metavar="PATH", default=None,
                       help="write the report to a file instead of stdout")
    p_rep.add_argument("--trace-out", metavar="PATH", default=None,
                       help="also export a Chrome trace with AVF counter tracks")
    p_rep.set_defaults(func=cmd_avf_report)

    p_run = avf_sub.add_parser(
        "run", help="append headline numbers to BENCH_reliability.json"
    )
    p_cmp = avf_sub.add_parser(
        "compare", help="gate headline numbers against the committed history"
    )
    for p in (p_run, p_cmp):
        p.add_argument("--mix", default=gate.HEADLINE_MIX, choices=sorted(MIXES))
        p.add_argument("--cycles", type=int, default=None,
                       help="override the cycle budget")
        p.add_argument("--history", default=gate.DEFAULT_RELIABILITY_HISTORY,
                       metavar="PATH",
                       help="history file (default BENCH_reliability.json)")
        p.add_argument("--out", metavar="PATH", default=None,
                       help="also save this run's numbers as JSON")
    p_run.add_argument("--no-history", action="store_true",
                       help="compute and print only; do not append an entry")
    p_run.set_defaults(func=cmd_avf_run)

    p_cmp.add_argument("--tolerance", type=float, default=0.05,
                       help="allowed two-sided relative drift (default 0.05)")
    p_cmp.add_argument("--window", type=int, default=5,
                       help="history entries forming the baseline (default 5)")
    p_cmp.add_argument("--results", metavar="PATH", default=None,
                       help="compare a saved results JSON instead of re-running")
    p_cmp.set_defaults(func=cmd_avf_compare)
