"""Bit-level AVF accounting for the IQ, ROB, register file and FUs.

Per Section 3 of the paper, ACE-ness is classified at instruction level
but the AVF computation is performed at bit level: every structure
entry has a declared bit layout, and an entry's resident instruction
contributes the ACE subset of those bits for every cycle of residency.

    AVF(structure) = Σ_cycles ACE-bits-resident / (total-bits × cycles)

Two accountings coexist, exactly as in the paper:

* the **oracle** AVF used for evaluation — attributed retroactively via
  the ACE analyzer's resolution callback (a committed un-ACE
  instruction still contributes its control/opcode bits; a squashed
  wrong-path instruction contributes nothing);
* the **online estimate** used by DVM (Section 5.1) — a running counter
  of *predicted*-ACE bits updated at IQ insert/remove, readable every
  cycle with no oracle knowledge.

Interval AVFs are bucketed by the *last cycle an instruction was
resident* in the structure (leave cycle minus one), giving the
per-interval runtime AVF trace that the PVE metric and Figures 8–10
are computed from.  Bucketing by the last resident cycle — not the
leave cycle itself — keeps the oracle path aligned with the online
per-cycle accumulation at interval edges: an instruction leaving
exactly at cycle ``k*L`` was last resident in cycle ``k*L - 1``, which
the online counter charged to interval ``k-1``.

When an :class:`~repro.telemetry.bus.EventBus` is attached (the
pipeline does this when telemetry is on), every finalized attribution
is also published as a ``reliability.attribution`` /
``reliability.rf`` event, guarded by cached ``wants()`` flags so the
zero-subscriber path pays one integer compare per resolution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Protocol

from repro.config import MachineConfig
from repro.isa.instruction import DynInst, DynState, OpClass
from repro.telemetry.bus import EventBus
from repro.telemetry.topics import TOPIC_RELIABILITY_ATTRIBUTION, TOPIC_RELIABILITY_RF


class RegisterLifetime(Protocol):
    """What the RF accounting needs from an ACE-analyzer record."""

    commit_cycle: int
    last_read_cycle: int
    dyn: DynInst


def interval_bucket(last_resident_cycle: int, interval_cycles: int) -> int:
    """The interval index a residency ending at ``last_resident_cycle``
    is attributed to (shared by the accountant and its observers)."""
    return max(last_resident_cycle, 0) // interval_cycles


class Structure(enum.IntEnum):
    IQ = 0
    ROB = 1
    RF = 2
    FU = 3


@dataclass(frozen=True)
class AVFBitLayout:
    """Bit widths used by the accountant.

    ``*_ace`` is the ACE bit count of an entry holding a (true or
    predicted) ACE instruction; ``*_unace`` the residual ACE bits
    (opcode/control fields — the paper notes "un-ACE instructions also
    contain ACE-bits (e.g. opcode)"); ``*_nop`` the residual bits of a
    NOP/prefetch.
    """

    iq_entry_bits: int = 128
    iq_ace: int = 96
    iq_unace: int = 12
    iq_nop: int = 8

    # ROB entries are mostly control state: results are written to the
    # register file at writeback, so only PC/exception/status fields
    # stay architecturally critical until commit.  This is why the IQ —
    # whose entries carry full operand/tag payloads for their whole
    # residency — dominates the ROB in Figure 1 despite the ROB's
    # longer occupancy.
    rob_entry_bits: int = 64
    rob_ace: int = 20
    rob_unace: int = 6
    rob_nop: int = 4

    # The rename substrate maps architectural registers onto a physical
    # file; Table 2's class of machine carries ~512 physical registers
    # (2x32 architectural per context plus rename headroom), which is
    # the structure a particle strikes.  Our lifetime model (vulnerable
    # from producer commit to last read) is an upper bound: it cannot
    # see which reader consumptions were themselves un-ACE.
    rf_physical_regs: int = 512
    rf_reg_bits: int = 64
    # FU latches: only a small slice of an executing operation's bits is
    # simultaneously strike-critical as it moves through the unit's
    # pipeline stages, which is why Figure 1 shows the FU well below
    # the IQ.
    fu_entry_bits: int = 128
    fu_ace: int = 32
    fu_unace: int = 4

    def validate(self) -> None:
        if not (0 <= self.iq_nop <= self.iq_unace <= self.iq_ace <= self.iq_entry_bits):
            raise ValueError("IQ bit layout must satisfy nop <= unace <= ace <= entry")
        if not (0 <= self.rob_nop <= self.rob_unace <= self.rob_ace <= self.rob_entry_bits):
            raise ValueError("ROB bit layout must satisfy nop <= unace <= ace <= entry")
        if not (0 <= self.fu_unace <= self.fu_ace <= self.fu_entry_bits):
            raise ValueError("FU bit layout must satisfy unace <= ace <= entry")
        if self.rf_reg_bits <= 0:
            raise ValueError("rf_reg_bits must be positive")


_QUIET = frozenset({OpClass.NOP, OpClass.PREFETCH})


class AVFAccount:
    """Accumulates ACE-bit-cycles per structure, overall and per interval."""

    def __init__(
        self,
        machine: MachineConfig,
        interval_cycles: int,
        layout: AVFBitLayout | None = None,
    ):
        if interval_cycles <= 0:
            raise ValueError("interval_cycles must be positive")
        self.layout = layout or AVFBitLayout()
        self.layout.validate()
        self.machine = machine
        self.interval_cycles = interval_cycles
        lay = self.layout
        from repro.core.functional_units import FunctionalUnitPool

        n_fu = FunctionalUnitPool(machine).total_units
        self._capacity_bits = {
            Structure.IQ: machine.iq_size * lay.iq_entry_bits,
            Structure.ROB: machine.num_threads * machine.rob_size_per_thread * lay.rob_entry_bits,
            Structure.RF: max(lay.rf_physical_regs, machine.num_threads * 64) * lay.rf_reg_bits,
            Structure.FU: n_fu * lay.fu_entry_bits,
        }
        # bit-cycles, overall and per interval index.
        self._acc = {s: 0 for s in Structure}
        self._interval_acc: dict[Structure, dict[int, int]] = {s: {} for s in Structure}
        self.total_cycles = 0
        # Optional event bus (the pipeline attaches its bus when
        # telemetry is on).  wants() is cached against bus.version so
        # the common no-subscriber case costs one compare per resolve.
        self.bus: EventBus | None = None
        self._bus_version = -1
        self._want_attr = False
        self._want_rf = False

    def _refresh_wants(self) -> None:
        bus = self.bus
        if bus is None:
            self._want_attr = False
            self._want_rf = False
            return
        if bus.version != self._bus_version:
            self._bus_version = bus.version
            self._want_attr = bus.wants(TOPIC_RELIABILITY_ATTRIBUTION)
            self._want_rf = bus.wants(TOPIC_RELIABILITY_RF)

    # ------------------------------------------------------------------
    # Bit classification
    # ------------------------------------------------------------------
    def iq_bits_oracle(self, dyn: DynInst) -> int:
        if dyn.state == DynState.SQUASHED or dyn.ace is None:
            return 0
        if dyn.opclass in _QUIET:
            return self.layout.iq_nop
        return self.layout.iq_ace if dyn.ace else self.layout.iq_unace

    def iq_bits_pred(self, dyn: DynInst) -> int:
        """Predicted-ACE bits — what DVM's hardware counter sees."""
        if dyn.opclass in _QUIET:
            return self.layout.iq_nop
        return self.layout.iq_ace if dyn.ace_pred else self.layout.iq_unace

    def rob_bits_pred(self, dyn: DynInst) -> int:
        """Predicted-ACE ROB bits (the ROB-DVM extension's counter)."""
        if dyn.opclass in _QUIET:
            return self.layout.rob_nop
        return self.layout.rob_ace if dyn.ace_pred else self.layout.rob_unace

    def rob_bits_oracle(self, dyn: DynInst) -> int:
        if dyn.state == DynState.SQUASHED or dyn.ace is None:
            return 0
        if dyn.opclass in _QUIET:
            return self.layout.rob_nop
        return self.layout.rob_ace if dyn.ace else self.layout.rob_unace

    def fu_bits_oracle(self, dyn: DynInst) -> int:
        if dyn.state == DynState.SQUASHED or dyn.ace is None:
            return 0
        if dyn.opclass in _QUIET:
            return 0
        return self.layout.fu_ace if dyn.ace else self.layout.fu_unace

    # ------------------------------------------------------------------
    # Attribution
    # ------------------------------------------------------------------
    def _add(self, structure: Structure, bit_cycles: int, last_resident_cycle: int) -> None:
        if bit_cycles <= 0:
            return
        self._acc[structure] += bit_cycles
        bucket = interval_bucket(last_resident_cycle, self.interval_cycles)
        intervals = self._interval_acc[structure]
        intervals[bucket] = intervals.get(bucket, 0) + bit_cycles

    def on_resolved(self, dyn: DynInst) -> None:
        """ACE-analyzer resolution callback: attribute all residencies of
        a committed instruction.

        Each residency is bucketed by its *last resident cycle* (leave
        cycle minus one), matching the cycle the online counters charged
        — see the module docstring for the interval-edge rationale.
        """
        iq_bc = rob_bc = fu_bc = 0
        if dyn.iq_leave_cycle >= 0 and dyn.dispatch_cycle >= 0:
            res = dyn.iq_leave_cycle - dyn.dispatch_cycle
            iq_bc = self.iq_bits_oracle(dyn) * res
            self._add(Structure.IQ, iq_bc, dyn.iq_leave_cycle - 1)
        if dyn.commit_cycle >= 0 and dyn.dispatch_cycle >= 0:
            res = dyn.commit_cycle - dyn.dispatch_cycle
            rob_bc = self.rob_bits_oracle(dyn) * res
            self._add(Structure.ROB, rob_bc, dyn.commit_cycle - 1)
        if dyn.issue_cycle >= 0:
            # Memory operations occupy their load/store unit only for
            # address generation; the (pipelined) cache fill does not
            # hold operand latches in the FU.
            res = 1 if dyn.opclass.is_mem else max(dyn.exec_latency, 1)
            fu_bc = self.fu_bits_oracle(dyn) * res
            self._add(Structure.FU, fu_bc, dyn.issue_cycle + res - 1)
        self._refresh_wants()
        if self._want_attr:
            assert self.bus is not None
            self.bus.emit(
                TOPIC_RELIABILITY_ATTRIBUTION,
                thread=dyn.thread,
                ace=bool(dyn.ace),
                quiet=dyn.opclass in _QUIET,
                iq_slot=dyn.iq_slot,
                iq_bit_cycles=iq_bc,
                rob_bit_cycles=rob_bc,
                fu_bit_cycles=fu_bc,
                dispatch_cycle=dyn.dispatch_cycle,
                issue_cycle=dyn.issue_cycle,
                iq_leave_cycle=dyn.iq_leave_cycle,
                commit_cycle=dyn.commit_cycle,
            )

    def on_rf_lifetime(self, rec: RegisterLifetime, end_cycle: int) -> None:
        """Register-lifetime callback from the ACE analyzer.

        A register's bits are counted ACE from the producer's commit to
        its last read (the interval in which a strike would corrupt a
        consumed value).  Never-read values contribute nothing.
        """
        if rec.last_read_cycle > rec.commit_cycle:
            cycles = rec.last_read_cycle - rec.commit_cycle
            bit_cycles = self.layout.rf_reg_bits * cycles
            self._add(Structure.RF, bit_cycles, rec.last_read_cycle - 1)
            self._refresh_wants()
            if self._want_rf:
                assert self.bus is not None
                self.bus.emit(
                    TOPIC_RELIABILITY_RF,
                    thread=rec.dyn.thread,
                    commit_cycle=rec.commit_cycle,
                    last_read_cycle=rec.last_read_cycle,
                    bit_cycles=bit_cycles,
                )

    def close(self, total_cycles: int) -> None:
        self.total_cycles = total_cycles

    # ------------------------------------------------------------------
    # Reading results
    # ------------------------------------------------------------------
    def overall_avf(self, structure: Structure) -> float:
        if not self.total_cycles:
            return 0.0
        denom = self._capacity_bits[structure] * self.total_cycles
        return self._acc[structure] / denom

    def interval_avf(self, structure: Structure) -> list[float]:
        """AVF per interval index, densely from interval 0 to the last
        one touched."""
        if not self.total_cycles:
            return []
        intervals = self._interval_acc[structure]
        n = self.total_cycles // self.interval_cycles
        if intervals:
            n = max(n, max(intervals) + 1)
        denom = self._capacity_bits[structure] * self.interval_cycles
        return [intervals.get(i, 0) / denom for i in range(n)]

    def capacity_bits(self, structure: Structure) -> int:
        return self._capacity_bits[structure]
