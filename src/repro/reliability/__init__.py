"""Reliability framework: ACE analysis, AVF accounting, offline
profiling, VISA-era resource allocation and dynamic vulnerability
management — the paper's contribution layer."""

from repro.reliability.ace import ACEAnalyzer
from repro.reliability.avf import AVFAccount, AVFBitLayout, Structure
from repro.reliability.profiling import ProfileResult, profile_program, apply_profile
from repro.reliability.resource_alloc import (
    DispatchPolicy,
    DynamicIQAllocation,
    L2MissSensitiveAllocation,
    UnlimitedDispatch,
)
from repro.reliability.dvm import DVMController, DVMStats

__all__ = [
    "ACEAnalyzer",
    "AVFAccount",
    "AVFBitLayout",
    "Structure",
    "ProfileResult",
    "profile_program",
    "apply_profile",
    "DispatchPolicy",
    "UnlimitedDispatch",
    "DynamicIQAllocation",
    "L2MissSensitiveAllocation",
    "DVMController",
    "DVMStats",
]
