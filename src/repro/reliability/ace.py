"""Post-retirement ACE analysis (ground truth for AVF).

Implements the methodology of Mukherjee et al. (MICRO 2003) that the
paper builds on (Section 2.1): an instruction's result is ACE iff it
transitively reaches an *ACE root* — a store, a control instruction or
an explicit program output — through the dynamic def-use graph.
Dynamically dead results (overwritten unread, or read only by dead
instructions) are un-ACE, as are NOPs and prefetches.

Because a retired instruction "cannot be classified ... until a large
amount of its following instructions have graduated", records wait in a
post-graduation window (paper/Mukherjee: 40,000 instructions); an
instruction not marked ACE by the time it exits the window is declared
un-ACE.

The analyzer consumes each thread's committed stream in program order
and calls a resolution callback once an instruction's ACE-ness is
final — the hook the AVF accountant uses for retroactive bit-residency
attribution.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.isa.instruction import DynInst, OpClass
from repro.telemetry.bus import EventBus
from repro.telemetry.topics import TOPIC_RELIABILITY_LATE_ACE

#: Opclasses whose committed instances are ACE roots.
_ROOTS = frozenset(
    {OpClass.STORE, OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RET}
)
#: Opclasses that are never ACE and whose register reads do not
#: propagate liveness (a corrupted prefetch address cannot corrupt
#: program output).
_NEVER_ACE = frozenset({OpClass.NOP, OpClass.PREFETCH})


class _Record:
    """Analysis record of one committed instruction."""

    __slots__ = ("dyn", "producers", "ace", "resolved", "commit_cycle", "last_read_cycle")

    def __init__(self, dyn: DynInst, commit_cycle: int):
        self.dyn = dyn
        self.producers: list[_Record] = []
        self.ace = False
        self.resolved = False
        self.commit_cycle = commit_cycle
        self.last_read_cycle = -1


@dataclass
class ACEStats:
    """Aggregate oracle classification counts."""

    committed: int = 0
    ace: int = 0
    unace: int = 0
    late_ace: int = 0  # marked ACE after already resolved un-ACE (window too small)

    @property
    def ace_fraction(self) -> float:
        done = self.ace + self.unace
        return self.ace / done if done else 0.0


#: Called once per committed instruction when its oracle ACE-ness is final.
ResolveCallback = Callable[[DynInst], None]
#: Called when an architectural register lifetime closes, with the
#: producer's analysis record and the closing cycle.
RegisterLifetimeCallback = Callable[["_Record", int], None]


class _ThreadAnalyzer:
    """Per-thread dynamic def-use liveness analysis."""

    __slots__ = (
        "window_size", "window", "last_writer", "stats",
        "_resolve_cb", "_rf_cb", "_owner",
    )

    def __init__(
        self,
        window_size: int,
        resolve_cb: ResolveCallback | None,
        rf_cb: RegisterLifetimeCallback | None,
        stats: ACEStats,
        owner: "ACEAnalyzer | None" = None,
    ):
        self.window_size = window_size
        self.window: deque[_Record] = deque()
        self.last_writer: dict[int, _Record] = {}
        self.stats = stats
        self._resolve_cb = resolve_cb
        self._rf_cb = rf_cb
        self._owner = owner

    def commit(self, dyn: DynInst, cycle: int) -> None:
        self.stats.committed += 1
        rec = _Record(dyn, cycle)
        st = dyn.static
        op = st.opclass

        # Link to producers (reads precede the write below in program
        # order, so self-reads link the previous instance).
        if op not in _NEVER_ACE:
            for reg in st.srcs:
                producer = self.last_writer.get(reg)
                if producer is not None:
                    rec.producers.append(producer)
                    producer.last_read_cycle = cycle

        # Destination overwrite: the previous writer's register-file
        # lifetime ends here.
        if st.dest >= 0:
            old = self.last_writer.get(st.dest)
            if old is not None and self._rf_cb is not None:
                self._rf_cb(old, cycle)
            self.last_writer[st.dest] = rec

        if op in _NEVER_ACE:
            self._resolve(rec)
        elif op in _ROOTS or st.is_output:
            self._mark_ace(rec)
            self._resolve(rec)
        else:
            pass  # waits in the window

        self.window.append(rec)
        while len(self.window) > self.window_size:
            self._resolve(self.window.popleft())

    def _mark_ace(self, rec: _Record) -> None:
        """Transitively mark ``rec`` and its producers ACE."""
        stack = [rec]
        while stack:
            r = stack.pop()
            if r.ace:
                continue
            r.ace = True
            if r.resolved and r.dyn.ace is False:
                self.stats.late_ace += 1
                # Rare (a correctly-sized window never hits this), so a
                # per-occurrence wants() check is fine.
                bus = self._owner.bus if self._owner is not None else None
                if bus is not None and bus.wants(TOPIC_RELIABILITY_LATE_ACE):
                    bus.emit(
                        TOPIC_RELIABILITY_LATE_ACE,
                        thread=r.dyn.thread,
                        total=self.stats.late_ace,
                    )
            stack.extend(r.producers)
            r.producers = []  # already propagated; release references

    def _resolve(self, rec: _Record) -> None:
        if rec.resolved:
            return
        rec.resolved = True
        rec.dyn.ace = rec.ace
        if rec.ace:
            self.stats.ace += 1
        else:
            self.stats.unace += 1
        # Producers links are no longer needed for un-ACE resolution,
        # but keep them if unmarked: a future reader may still mark us.
        if self._resolve_cb is not None:
            self._resolve_cb(rec.dyn)

    def flush(self, final_cycle: int) -> None:
        """End of simulation: resolve everything still pending and close
        open register lifetimes."""
        while self.window:
            self._resolve(self.window.popleft())
        if self._rf_cb is not None:
            for rec in self.last_writer.values():
                self._rf_cb(rec, final_cycle)
        self.last_writer.clear()


class ACEAnalyzer:
    """Multi-thread ACE ground-truth analyzer.

    Parameters
    ----------
    num_threads:
        Number of committed streams.
    window_size:
        Post-graduation analysis window, in instructions per thread.
    resolve_cb:
        Called as ``resolve_cb(dyn)`` exactly once per committed
        instruction, when its oracle ACE-ness (``dyn.ace``) is final.
    rf_cb:
        Called as ``rf_cb(record, end_cycle)`` when an architectural
        register lifetime closes (used for register-file AVF).
    """

    def __init__(
        self,
        num_threads: int,
        window_size: int = 40_000,
        resolve_cb: ResolveCallback | None = None,
        rf_cb: RegisterLifetimeCallback | None = None,
    ):
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        self.stats = ACEStats()
        # Attached by the pipeline when telemetry is on; late-ACE
        # occurrences are then published as ``reliability.late_ace``.
        self.bus: EventBus | None = None
        self._threads = [
            _ThreadAnalyzer(window_size, resolve_cb, rf_cb, self.stats, owner=self)
            for _ in range(num_threads)
        ]

    def commit(self, dyn: DynInst, cycle: int) -> None:
        """Feed one committed instruction (program order per thread)."""
        self._threads[dyn.thread].commit(dyn, cycle)

    def flush(self, final_cycle: int) -> None:
        """Resolve all pending records (end of run)."""
        for t in self._threads:
            t.flush(final_cycle)
