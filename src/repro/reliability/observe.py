"""Streaming AVF attribution: the reliability-observability consumer.

The accountant, ACE analyzer and DVM publish ``reliability.*`` events
on the telemetry bus (see :mod:`repro.telemetry.topics`); this module
is their reference consumer.  :class:`ReliabilityObserver` subscribes
to those streams plus ``interval.close`` and folds them, online, into:

* per-interval, per-structure (IQ/ROB/RF/FU) oracle ACE-bit residency,
  reproducing the accountant's interval AVF series from the stream;
* per-thread ACE-bit shares (which context is carrying the
  vulnerability);
* fill→issue→dealloc residency histograms
  (:class:`~repro.telemetry.metrics.StreamingHistogram`);
* a per-entry IQ occupancy/vulnerability heatmap — slot × interval,
  spread proportionally across the buckets a residency overlaps;
* the end-of-run online-vs-oracle divergence series.

``observer.report()`` snapshots all of it as a
:class:`VulnerabilityReport` with JSON (``to_dict``) and terminal
(``format``) renderings — the payload behind ``repro avf report``.

The observer is pull-free: everything arrives over the bus, so it works
identically on a live pipeline, a replayed recording, or a remote
stream.  Attaching it bumps the bus subscription version, which is what
flips the accountant's cached ``wants()`` flags on; a run without an
observer never builds a payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.telemetry.bus import Event, EventBus, Subscription
from repro.telemetry.metrics import StreamingHistogram
from repro.telemetry.topics import (
    TOPIC_INTERVAL_CLOSE,
    TOPIC_RELIABILITY_ATTRIBUTION,
    TOPIC_RELIABILITY_DIVERGENCE,
    TOPIC_RELIABILITY_ESTIMATE,
    TOPIC_RELIABILITY_LATE_ACE,
    TOPIC_RELIABILITY_RF,
)

#: Structure keys used throughout the report (stream payloads use the
#: same spelling).
STRUCTURES: tuple[str, ...] = ("iq", "rob", "rf", "fu")

#: Shade ramp for terminal heatmaps (empty → saturated).
_SHADES = " ░▒▓█"

#: Heatmap rows group this many physical IQ slots.
SLOT_BIN = 8


def _bucket(last_resident_cycle: int, interval_cycles: int) -> int:
    # Mirrors repro.reliability.avf.interval_bucket; duplicated here so
    # the observer stays importable without the accountant.
    return max(last_resident_cycle, 0) // interval_cycles


@dataclass
class VulnerabilityReport:
    """Snapshot of everything the observer accumulated."""

    total_cycles: int
    interval_cycles: int
    intervals: int
    capacity_bits: dict[str, int]
    oracle_overall_avf: dict[str, float]
    oracle_interval_avf: dict[str, list[float]]
    online_interval_avf: dict[str, list[float]]
    per_thread_bit_cycles: dict[str, dict[int, int]]
    residency: dict[str, dict[str, float]]
    residency_quantiles: dict[str, dict[str, float]]
    heatmap_occupancy: list[list[float]]
    heatmap_vulnerability: list[list[float]]
    divergence: dict[str, dict[str, float]]
    late_ace: dict[int, int]
    attributions: int
    rf_lifetimes: int

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dict (string keys throughout)."""
        return {
            "total_cycles": self.total_cycles,
            "interval_cycles": self.interval_cycles,
            "intervals": self.intervals,
            "capacity_bits": dict(self.capacity_bits),
            "oracle_overall_avf": dict(self.oracle_overall_avf),
            "oracle_interval_avf": {
                k: list(v) for k, v in self.oracle_interval_avf.items()
            },
            "online_interval_avf": {
                k: list(v) for k, v in self.online_interval_avf.items()
            },
            "per_thread_bit_cycles": {
                s: {str(t): c for t, c in threads.items()}
                for s, threads in self.per_thread_bit_cycles.items()
            },
            "residency": {k: dict(v) for k, v in self.residency.items()},
            "residency_quantiles": {
                k: dict(v) for k, v in self.residency_quantiles.items()
            },
            "heatmap_occupancy": [list(r) for r in self.heatmap_occupancy],
            "heatmap_vulnerability": [list(r) for r in self.heatmap_vulnerability],
            "divergence": {k: dict(v) for k, v in self.divergence.items()},
            "late_ace": {str(t): n for t, n in self.late_ace.items()},
            "attributions": self.attributions,
            "rf_lifetimes": self.rf_lifetimes,
        }

    # ------------------------------------------------------------------
    def _heatmap_lines(self, grid: list[list[float]], title: str) -> list[str]:
        if not grid or not any(any(row) for row in grid):
            return [f"{title}: (no samples)"]
        peak = max(max(row) for row in grid if row) or 1.0
        lines = [f"{title} (rows: slot groups of {SLOT_BIN}; cols: intervals)"]
        for r, row in enumerate(grid):
            cells = "".join(
                _SHADES[min(int(v / peak * (len(_SHADES) - 1) + 0.999), len(_SHADES) - 1)]
                for v in row
            )
            lo, hi = r * SLOT_BIN, r * SLOT_BIN + SLOT_BIN - 1
            lines.append(f"  slots {lo:3d}-{hi:3d} |{cells}|")
        return lines

    def format(self) -> str:
        """Human-readable terminal rendering."""
        out: list[str] = [
            f"Vulnerability report — {self.total_cycles} cycles, "
            f"{self.intervals} intervals × {self.interval_cycles} cycles",
            "",
            f"{'structure':<10} {'oracle AVF':>11} {'online mean':>12} {'capacity':>10}",
        ]
        for s in STRUCTURES:
            online = self.online_interval_avf.get(s, [])
            online_mean = sum(online) / len(online) if online else float("nan")
            out.append(
                f"{s:<10} {self.oracle_overall_avf.get(s, 0.0):>11.4f} "
                f"{online_mean:>12.4f} {self.capacity_bits.get(s, 0):>10d}"
            )
        for s in STRUCTURES:
            threads = self.per_thread_bit_cycles.get(s) or {}
            total = sum(threads.values())
            if total:
                shares = "  ".join(
                    f"t{t}={threads[t] / total:.0%}" for t in sorted(threads)
                )
                out.append(f"{s} ACE-bit share by thread: {shares}")
        out.append("")
        for name in sorted(self.residency):
            h = self.residency[name]
            q = self.residency_quantiles.get(name, {})
            if h.get("count"):
                out.append(
                    f"{name}: n={int(h['count'])} mean={h['mean']:.1f} "
                    f"p50≈{q.get('p50', float('nan')):.0f} "
                    f"p90≈{q.get('p90', float('nan')):.0f} "
                    f"max={h['max']:.0f} cycles"
                )
        out.append("")
        out.extend(
            self._heatmap_lines(self.heatmap_vulnerability, "IQ vulnerability heatmap")
        )
        out.extend(
            self._heatmap_lines(self.heatmap_occupancy, "IQ occupancy heatmap")
        )
        if self.divergence:
            out.append("")
            for s, d in sorted(self.divergence.items()):
                out.append(
                    f"{s} online-vs-oracle divergence: mean |Δ|={d['mean_abs']:.4f} "
                    f"max |Δ|={d['max_abs']:.4f} over {int(d['intervals'])} intervals"
                )
        if self.late_ace:
            total_late = sum(self.late_ace.values())
            out.append(f"late-ACE resolutions (window too small): {total_late}")
        return "\n".join(out)


class ReliabilityObserver:
    """Folds the ``reliability.*`` streams into a vulnerability report.

    Parameters
    ----------
    interval_cycles:
        Bucketing granularity — must match the emitting accountant.
    capacity_bits:
        Per-structure capacity (``{"iq": ..., "rob": ..., ...}``), the
        AVF denominators.
    iq_slots:
        Physical IQ entry count (heatmap rows cover slots 0..iq_slots-1).
    """

    def __init__(
        self,
        interval_cycles: int,
        capacity_bits: Mapping[str, int],
        iq_slots: int,
    ):
        if interval_cycles <= 0:
            raise ValueError("interval_cycles must be positive")
        if iq_slots <= 0:
            raise ValueError("iq_slots must be positive")
        self.interval_cycles = interval_cycles
        self.capacity_bits = {s: int(capacity_bits.get(s, 0)) for s in STRUCTURES}
        self.iq_slots = iq_slots
        # structure -> bucket -> oracle ACE-bit-cycles.
        self._bits: dict[str, dict[int, int]] = {s: {} for s in STRUCTURES}
        # structure -> thread -> total ACE-bit-cycles.
        self._thread_bits: dict[str, dict[int, int]] = {s: {} for s in STRUCTURES}
        # slot -> bucket -> cycles / bit-cycles (heatmap).
        self._slot_occ: list[dict[int, int]] = [{} for _ in range(iq_slots)]
        self._slot_vuln: list[dict[int, int]] = [{} for _ in range(iq_slots)]
        self.histograms: dict[str, StreamingHistogram] = {
            "iq_wait": StreamingHistogram(),
            "iq_residency": StreamingHistogram(),
            "rob_residency": StreamingHistogram(),
            "rf_lifetime": StreamingHistogram(),
        }
        # interval index -> online estimate, from interval.close.
        self._online: dict[str, dict[int, float]] = {"iq": {}, "rob": {}}
        # structure -> list of (oracle - online) divergences.
        self._divergence: dict[str, list[float]] = {}
        self.late_ace: dict[int, int] = {}
        self.estimates: list[tuple[int, str, float, bool]] = []
        self.attributions = 0
        self.rf_lifetimes = 0
        self._max_bucket = -1
        self._last_cycle = 0
        self._subs: list[Subscription] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, bus: EventBus) -> "ReliabilityObserver":
        """Subscribe to every stream this observer consumes."""
        self._subs = [
            bus.subscribe(TOPIC_RELIABILITY_ATTRIBUTION, self._on_attribution),
            bus.subscribe(TOPIC_RELIABILITY_RF, self._on_rf),
            bus.subscribe(TOPIC_RELIABILITY_LATE_ACE, self._on_late_ace),
            bus.subscribe(TOPIC_RELIABILITY_ESTIMATE, self._on_estimate),
            bus.subscribe(TOPIC_RELIABILITY_DIVERGENCE, self._on_divergence),
            bus.subscribe(TOPIC_INTERVAL_CLOSE, self._on_interval),
        ]
        return self

    def detach(self) -> None:
        for sub in self._subs:
            sub.close()
        self._subs = []

    def __enter__(self) -> "ReliabilityObserver":
        return self

    def __exit__(self, *exc: object) -> None:
        self.detach()

    @classmethod
    def for_pipeline(cls, pipe: Any) -> "ReliabilityObserver":
        """Build from a :class:`~repro.core.pipeline.Pipeline` (not yet
        run) and attach to its bus."""
        from repro.reliability.avf import Structure

        acct = pipe.avf
        obs = cls(
            interval_cycles=acct.interval_cycles,
            capacity_bits={
                "iq": acct.capacity_bits(Structure.IQ),
                "rob": acct.capacity_bits(Structure.ROB),
                "rf": acct.capacity_bits(Structure.RF),
                "fu": acct.capacity_bits(Structure.FU),
            },
            iq_slots=pipe.machine.iq_size,
        )
        return obs.attach(pipe.bus)

    # ------------------------------------------------------------------
    # Stream handlers
    # ------------------------------------------------------------------
    def _add(self, structure: str, thread: int, bit_cycles: int, bucket: int) -> None:
        if bit_cycles <= 0:
            return
        buckets = self._bits[structure]
        buckets[bucket] = buckets.get(bucket, 0) + bit_cycles
        threads = self._thread_bits[structure]
        threads[thread] = threads.get(thread, 0) + bit_cycles
        if bucket > self._max_bucket:
            self._max_bucket = bucket

    def _on_attribution(self, ev: Event) -> None:
        p = ev.payload
        self.attributions += 1
        self._last_cycle = max(self._last_cycle, ev.cycle)
        thread = int(p["thread"])
        L = self.interval_cycles
        dispatch = int(p["dispatch_cycle"])
        issue = int(p["issue_cycle"])
        leave = int(p["iq_leave_cycle"])
        commit = int(p["commit_cycle"])
        self._add("iq", thread, int(p["iq_bit_cycles"]), _bucket(leave - 1, L))
        self._add("rob", thread, int(p["rob_bit_cycles"]), _bucket(commit - 1, L))
        if issue >= 0:
            self._add("fu", thread, int(p["fu_bit_cycles"]), _bucket(issue, L))
        if leave >= 0 and dispatch >= 0:
            self.histograms["iq_residency"].observe(max(leave - dispatch, 0))
            if issue >= 0:
                self.histograms["iq_wait"].observe(max(issue - dispatch, 0))
            self._heat(int(p["iq_slot"]), dispatch, leave, int(p["iq_bit_cycles"]))
        if commit >= 0 and dispatch >= 0:
            self.histograms["rob_residency"].observe(max(commit - dispatch, 0))

    def _heat(self, slot: int, dispatch: int, leave: int, bit_cycles: int) -> None:
        """Spread one residency ``[dispatch, leave)`` across the interval
        buckets it overlaps, proportionally by overlap length."""
        if not (0 <= slot < self.iq_slots) or leave <= dispatch:
            return
        L = self.interval_cycles
        span = leave - dispatch
        occ, vuln = self._slot_occ[slot], self._slot_vuln[slot]
        b = dispatch // L
        while b * L < leave:
            overlap = min(leave, (b + 1) * L) - max(dispatch, b * L)
            if overlap > 0:
                occ[b] = occ.get(b, 0) + overlap
                # bit_cycles covers the whole residency; apportion it.
                vuln[b] = vuln.get(b, 0) + (bit_cycles * overlap) // span
                if b > self._max_bucket:
                    self._max_bucket = b
            b += 1

    def _on_rf(self, ev: Event) -> None:
        p = ev.payload
        self.rf_lifetimes += 1
        thread = int(p["thread"])
        last_read = int(p["last_read_cycle"])
        commit = int(p["commit_cycle"])
        self._add(
            "rf", thread, int(p["bit_cycles"]), _bucket(last_read - 1, self.interval_cycles)
        )
        self.histograms["rf_lifetime"].observe(max(last_read - commit, 0))

    def _on_late_ace(self, ev: Event) -> None:
        thread = int(ev.payload["thread"])
        self.late_ace[thread] = self.late_ace.get(thread, 0) + 1

    def _on_estimate(self, ev: Event) -> None:
        p = ev.payload
        self.estimates.append(
            (ev.cycle, str(p["structure"]), float(p["estimate"]), bool(p["triggered"]))
        )

    def _on_divergence(self, ev: Event) -> None:
        p = ev.payload
        self._divergence.setdefault(str(p["structure"]), []).append(
            float(p["divergence"])
        )

    def _on_interval(self, ev: Event) -> None:
        p = ev.payload
        index = int(p["index"])
        self._last_cycle = max(self._last_cycle, int(p["end_cycle"]))
        self._online["iq"][index] = float(p["online_avf_estimate"])
        self._online["rob"][index] = float(p["online_rob_estimate"])
        if index > self._max_bucket:
            self._max_bucket = index

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _n_intervals(self, total_cycles: int) -> int:
        return max(total_cycles // self.interval_cycles, self._max_bucket + 1, 0)

    def report(self, total_cycles: int | None = None) -> VulnerabilityReport:
        """Snapshot the accumulated state (callable mid-run or after)."""
        total = int(total_cycles) if total_cycles is not None else self._last_cycle
        total = max(total, 1)
        n = self._n_intervals(total)
        L = self.interval_cycles

        oracle_interval: dict[str, list[float]] = {}
        oracle_overall: dict[str, float] = {}
        for s in STRUCTURES:
            cap = self.capacity_bits[s]
            denom_i = cap * L
            buckets = self._bits[s]
            oracle_interval[s] = [
                (buckets.get(i, 0) / denom_i if denom_i else 0.0) for i in range(n)
            ]
            denom_o = cap * total
            oracle_overall[s] = sum(buckets.values()) / denom_o if denom_o else 0.0

        online_interval = {
            s: [series.get(i, 0.0) for i in range(n)]
            for s, series in self._online.items()
        }

        rows = (self.iq_slots + SLOT_BIN - 1) // SLOT_BIN
        occ_grid = [[0.0] * n for _ in range(rows)]
        vuln_grid = [[0.0] * n for _ in range(rows)]
        for slot in range(self.iq_slots):
            r = slot // SLOT_BIN
            for b, cyc in self._slot_occ[slot].items():
                if b < n:
                    occ_grid[r][b] += cyc / (SLOT_BIN * L)
            for b, bc in self._slot_vuln[slot].items():
                if b < n:
                    vuln_grid[r][b] += bc

        divergence: dict[str, dict[str, float]] = {}
        for s, deltas in self._divergence.items():
            abs_d = [abs(d) for d in deltas]
            divergence[s] = {
                "mean_abs": sum(abs_d) / len(abs_d),
                "max_abs": max(abs_d),
                "intervals": float(len(abs_d)),
            }

        return VulnerabilityReport(
            total_cycles=total,
            interval_cycles=L,
            intervals=n,
            capacity_bits=dict(self.capacity_bits),
            oracle_overall_avf=oracle_overall,
            oracle_interval_avf=oracle_interval,
            online_interval_avf=online_interval,
            per_thread_bit_cycles={
                s: dict(t) for s, t in self._thread_bits.items()
            },
            residency={k: h.get() for k, h in self.histograms.items()},
            residency_quantiles={
                k: {"p50": h.quantile(0.5), "p90": h.quantile(0.9)}
                for k, h in self.histograms.items()
            },
            heatmap_occupancy=occ_grid,
            heatmap_vulnerability=vuln_grid,
            divergence=divergence,
            late_ace=dict(self.late_ace),
            attributions=self.attributions,
            rf_lifetimes=self.rf_lifetimes,
        )


__all__ = [
    "ReliabilityObserver",
    "SLOT_BIN",
    "STRUCTURES",
    "VulnerabilityReport",
]
