"""Dynamic IQ resource allocation (Optimizations 1 and 2).

Figure 3 of the paper: every interval (10K cycles), the number of
allocatable IQ entries (``IQL``) is set from the interval's IPC and
ready-queue length:

    0 < IPC <= 2 : IQL = min(RQL + 1/6·IQ, 1/3·IQ)
    2 < IPC <= 4 : IQL = min(RQL + 1/3·IQ, 1/2·IQ)
    4 < IPC <= 6 : IQL = min(RQL + 1/2·IQ, 2/3·IQ)
    6 < IPC <= 8 : IQL = min(RQL + 2/3·IQ,     IQ)

i.e. for region ``i`` of ``N`` (paper: N = 4, found optimal),
``IQL = min(RQL + (i+1)/(N+2)·IQ, (i+2)/(N+2)·IQ)`` — the general form
used here so the region-count ablation is expressible.

Figure 4 (Optimization 2): when the interval's L2 miss count exceeds
``Tcache_miss`` (paper: 16), the cap is lifted and the FLUSH fetch
policy is enabled instead, because capping a clogged IQ starves the
post-miss ramp-up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ReliabilityConfig
from repro.telemetry.bus import EventBus
from repro.telemetry.topics import TOPIC_FLUSH_SWITCH, TOPIC_IQL_CAP


@dataclass(frozen=True)
class IntervalSnapshot:
    """Per-interval statistics handed to adaptive controllers."""

    cycle: int
    committed: int
    cycles: int
    avg_ready_queue_len: float
    l2_misses: int

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0


class DispatchPolicy:
    """Base dispatch-side resource controller: no restriction."""

    name = "none"

    def __init__(self, iq_size: int):
        if iq_size <= 0:
            raise ValueError("iq_size must be positive")
        self.iq_size = iq_size
        #: Telemetry spine; the pipeline swaps in its shared bus.
        self.bus = EventBus()

    @property
    def iq_limit(self) -> int:
        """Max IQ entries the dispatch stage may currently allocate."""
        return self.iq_size

    @property
    def flush_mode(self) -> bool:
        """True when Optimization 2 has switched to the FLUSH policy."""
        return False

    def on_interval(self, snap: IntervalSnapshot) -> None:
        """Interval-boundary adaptation hook."""

    def reset(self) -> None:
        """Clear adaptive state."""


class UnlimitedDispatch(DispatchPolicy):
    """Baseline: the full IQ is always allocatable."""

    name = "unlimited"


class DynamicIQAllocation(DispatchPolicy):
    """Optimization 1 — IPC/RQL-driven IQ allocation cap (Figure 3).

    ``ratio_mode="static"`` (default) uses the paper's per-region static
    fractions.  ``ratio_mode="linear"`` is the alternative the paper
    mentions trying ("dynamic ratio setup using linear models that
    correlates with IPC"): the additive fraction interpolates linearly
    from 1/6 at IPC 0 to 4/6 at full commit width, with the cap one
    step (1/6 of the IQ) above it.  The paper found both "show similar
    efficiency" and kept static for simplicity.
    """

    name = "opt1"

    def __init__(
        self,
        iq_size: int,
        commit_width: int = 8,
        num_regions: int = 4,
        min_limit: int = 8,
        ratio_mode: str = "static",
    ):
        super().__init__(iq_size)
        if num_regions <= 0:
            raise ValueError("num_regions must be positive")
        if not (0 < min_limit <= iq_size):
            raise ValueError("min_limit must be in (0, iq_size]")
        if ratio_mode not in ("static", "linear"):
            raise ValueError("ratio_mode must be 'static' or 'linear'")
        self.commit_width = commit_width
        self.num_regions = num_regions
        self.min_limit = min_limit
        self.ratio_mode = ratio_mode
        self._iql = iq_size
        self.limit_history: list[int] = []

    @property
    def iq_limit(self) -> int:
        return self._iql

    def region_of(self, ipc: float) -> int:
        """IPC region index in [0, num_regions).

        Paper intervals are left-open/right-closed (0 < IPC <= 2, ...),
        so boundary IPCs belong to the lower region.
        """
        import math

        width = self.commit_width / self.num_regions
        region = math.ceil(ipc / width) - 1
        return min(max(region, 0), self.num_regions - 1)

    def limit_for(self, ipc: float, rql: float) -> int:
        if self.ratio_mode == "linear":
            frac = min(max(ipc / self.commit_width, 0.0), 1.0)
            add = (1.0 + 3.0 * frac) / 6.0 * self.iq_size
            cap = min(add + self.iq_size / 6.0, float(self.iq_size))
        else:
            i = self.region_of(ipc)
            denom = self.num_regions + 2
            add = (i + 1) * self.iq_size / denom
            # Figure 3 caps: 1/3, 1/2, 2/3 … and the *whole* IQ for the
            # top region (the paper's last line uses IQ_SIZE, not 5/6).
            if i == self.num_regions - 1:
                cap = float(self.iq_size)
            else:
                cap = (i + 2) * self.iq_size / denom
        iql = int(min(rql + add, cap))
        return max(self.min_limit, min(iql, self.iq_size))

    def on_interval(self, snap: IntervalSnapshot) -> None:
        old = self._iql
        self._iql = self.limit_for(snap.ipc, snap.avg_ready_queue_len)
        self.limit_history.append(self._iql)
        if self._iql != old and self.bus.wants(TOPIC_IQL_CAP):
            self.bus.emit(
                TOPIC_IQL_CAP,
                old_limit=old,
                new_limit=self._iql,
                ipc=snap.ipc,
                avg_ready_queue_len=snap.avg_ready_queue_len,
            )

    def reset(self) -> None:
        self._iql = self.iq_size
        self.limit_history.clear()


class L2MissSensitiveAllocation(DynamicIQAllocation):
    """Optimization 2 — Figure 4: Optimization 1 while L2 misses are
    rare; FLUSH fetch policy (and no cap) when they are frequent."""

    name = "opt2"

    def __init__(
        self,
        iq_size: int,
        commit_width: int = 8,
        num_regions: int = 4,
        t_cache_miss: int | None = None,
        min_limit: int = 8,
    ):
        super().__init__(iq_size, commit_width, num_regions, min_limit)
        if t_cache_miss is None:
            t_cache_miss = ReliabilityConfig().t_cache_miss
        if t_cache_miss < 0:
            raise ValueError("t_cache_miss must be non-negative")
        self.t_cache_miss = t_cache_miss
        self._flush_mode = False
        self.flush_intervals = 0

    @property
    def flush_mode(self) -> bool:
        return self._flush_mode

    def on_interval(self, snap: IntervalSnapshot) -> None:
        was_flush = self._flush_mode
        if snap.l2_misses > self.t_cache_miss:
            # Figure 4: when L2 misses are frequent, capping starves the
            # post-miss ramp-up, so the cap is lifted and FLUSH manages
            # vulnerability instead.
            self._flush_mode = True
            self._iql = self.iq_size
            self.flush_intervals += 1
            self.limit_history.append(self._iql)
        else:
            self._flush_mode = False
            super().on_interval(snap)
        if self._flush_mode != was_flush and self.bus.wants(TOPIC_FLUSH_SWITCH):
            self.bus.emit(
                TOPIC_FLUSH_SWITCH,
                enabled=self._flush_mode,
                l2_misses=snap.l2_misses,
                threshold=self.t_cache_miss,
            )

    def reset(self) -> None:
        super().reset()
        self._flush_mode = False
        self.flush_intervals = 0
