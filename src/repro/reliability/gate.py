"""``BENCH_reliability.json``: the committed reliability trajectory.

The perf gate (:mod:`repro.perf.history` / :mod:`repro.perf.compare`)
pins *wall time*; this module reuses the same history machinery to pin
the paper's *headline reliability numbers* — baseline IQ AVF and the
VISA+DVM AVF reduction — so a change that silently shifts the physics
(a scheduler tweak, an accountant bug) fails CI the same way a 2×
slowdown does.

Unlike wall time, reliability values are deterministic for a given
seed, but must drift in *neither* direction: a "better" AVF reduction
out of nowhere is as suspicious as a worse one.  The comparator is
therefore a symmetric tolerance band around the **median** of the
recent history window:

    |current - baseline| <= tolerance * max(|baseline|, floor)

``repro avf run`` appends an entry; ``repro avf compare`` gates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

from repro.harness.runner import BenchScale, run_sim
from repro.perf.history import append_entry, entries_of_kind

#: Entry kind in the shared history-document layout.
KIND_RELIABILITY = "reliability-suite"

#: Default committed location, beside BENCH_perf.json.
DEFAULT_RELIABILITY_HISTORY = "BENCH_reliability.json"

#: The headline configuration: the paper's memory-bound mix, where IQ
#: vulnerability (and DVM's leverage on it) is largest.
HEADLINE_MIX = "MEM-A"

#: DVM reliability target as a fraction of the baseline's peak online
#: estimate (matching the ``repro perf trace`` convention).
DVM_TARGET_FRACTION = 0.5

#: Relative-drift denominator floor — keeps near-zero baselines from
#: turning the relative band into an equality test.
DRIFT_FLOOR = 1e-9

STATUS_OK = "ok"
STATUS_DRIFT = "drift"
STATUS_NEW = "new"
STATUS_INVALID = "invalid"


def headline_numbers(
    scale: BenchScale, mix: str = HEADLINE_MIX
) -> dict[str, float]:
    """The gated reliability scalars at one scale.

    Runs the unmitigated baseline and the VISA+DVM configuration
    (target = ``DVM_TARGET_FRACTION`` × the baseline's peak online
    estimate) through the memoized :func:`run_sim` path.
    """
    base = run_sim(mix, scale, scheduler="oldest")
    target = max(base.max_online_estimate * DVM_TARGET_FRACTION, DRIFT_FLOOR)
    mitigated = run_sim(mix, scale, scheduler="visa", dvm_target=target)
    reduction = (
        1.0 - mitigated.iq_avf / base.iq_avf if base.iq_avf > 0 else 0.0
    )
    return {
        "baseline_iq_avf": base.iq_avf,
        "visa_dvm_iq_avf": mitigated.iq_avf,
        "avf_reduction": reduction,
        "baseline_ipc": base.ipc,
        "visa_dvm_ipc": mitigated.ipc,
    }


@dataclass(frozen=True)
class DriftCase:
    """One headline number's verdict against its history baseline."""

    name: str
    status: str
    current: float
    baseline: float | None = None

    @property
    def drift(self) -> float | None:
        """Relative drift vs. baseline; None without a baseline."""
        if self.baseline is None:
            return None
        denom = max(abs(self.baseline), DRIFT_FLOOR)
        return (self.current - self.baseline) / denom


@dataclass(frozen=True)
class DriftReport:
    """Whole-suite reliability-drift outcome."""

    cases: tuple[DriftCase, ...]
    tolerance: float
    window: int

    @property
    def drifted(self) -> tuple[DriftCase, ...]:
        return tuple(c for c in self.cases if c.status == STATUS_DRIFT)

    @property
    def invalid(self) -> tuple[DriftCase, ...]:
        return tuple(c for c in self.cases if c.status == STATUS_INVALID)

    @property
    def ok(self) -> bool:
        return not self.drifted and not self.invalid

    def format(self) -> str:
        lines = [
            f"reliability drift gate (band ±{self.tolerance * 100:.1f}%, "
            f"baseline = median of last {self.window} entries)"
        ]
        width = max((len(c.name) for c in self.cases), default=4)
        for c in self.cases:
            if c.baseline is None:
                base, delta = "        -", "      -"
            else:
                base = f"{c.baseline:9.5f}"
                d = c.drift
                delta = f"{d * 100:+6.2f}%" if d is not None else "      -"
            lines.append(
                f"  {c.name:<{width}s}  {c.current:9.5f}  vs {base}  {delta}  "
                f"[{c.status}]"
            )
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"{verdict}: {len(self.drifted)} drifted, {len(self.invalid)} "
            f"invalid, {sum(1 for c in self.cases if c.status == STATUS_NEW)} new"
        )
        return "\n".join(lines)


def _entry_value(entry: Mapping[str, Any], name: str) -> float | None:
    result = entry.get("results", {}).get(name)
    value = result.get("value") if isinstance(result, Mapping) else result
    if isinstance(value, (int, float)) and math.isfinite(value):
        return float(value)
    return None


def baseline_value(
    history: Mapping[str, Any],
    name: str,
    *,
    window: int = 5,
    kind: str = KIND_RELIABILITY,
) -> float | None:
    """Median of ``name`` over the last ``window`` usable entries.

    The median (not the min): reliability numbers must not drift in
    either direction, so the baseline is the recent consensus, robust
    to a single odd historical entry.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    values = [
        v
        for entry in entries_of_kind(history, kind)[-window:]
        if (v := _entry_value(entry, name)) is not None
    ]
    if not values:
        return None
    values.sort()
    mid = len(values) // 2
    if len(values) % 2:
        return values[mid]
    return (values[mid - 1] + values[mid]) / 2.0


def compare_reliability(
    history: Mapping[str, Any],
    current: Mapping[str, float],
    *,
    tolerance: float = 0.05,
    window: int = 5,
    kind: str = KIND_RELIABILITY,
) -> DriftReport:
    """Two-sided drift comparison of ``current`` against the window."""
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    cases: list[DriftCase] = []
    for name in sorted(current):
        cur = current[name]
        base = baseline_value(history, name, window=window, kind=kind)
        if not isinstance(cur, (int, float)) or not math.isfinite(cur):
            status = STATUS_INVALID
            cur = float("nan")
        elif base is None:
            status = STATUS_NEW
        elif abs(cur - base) > tolerance * max(abs(base), DRIFT_FLOOR):
            status = STATUS_DRIFT
        else:
            status = STATUS_OK
        cases.append(DriftCase(name, status, float(cur), base))
    return DriftReport(tuple(cases), tolerance, window)


def record_reliability(
    path: str,
    results: Mapping[str, float],
    *,
    context: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Append one reliability entry to the shared history layout.

    Values are wrapped as ``{"value": v}`` so the perf comparator's
    ``best_s`` convention never misreads them.
    """
    return append_entry(
        path,
        {name: {"value": float(v)} for name, v in results.items()},
        kind=KIND_RELIABILITY,
        context=context,
    )


__all__ = [
    "DEFAULT_RELIABILITY_HISTORY",
    "DVM_TARGET_FRACTION",
    "DriftCase",
    "DriftReport",
    "HEADLINE_MIX",
    "KIND_RELIABILITY",
    "baseline_value",
    "compare_reliability",
    "headline_numbers",
    "record_reliability",
]
