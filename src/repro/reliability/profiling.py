"""Offline instruction vulnerability profiling (Section 2.1, Table 1).

The paper profiles each benchmark offline, classifies every *static*
instruction (PC) as ACE if **any** of its committed dynamic instances
is ACE, and encodes the result as a 1-bit ISA tag checked at decode.
The classification is deliberately conservative: it can never produce a
false negative (an ACE instance predicted un-ACE), only false positives
(un-ACE instances of a sometimes-ACE PC predicted ACE).

Profiling is *functional*: the committed stream is exactly the correct
control-flow path, so it can be produced by walking the program's
thread context directly — no pipeline timing involved (instructions on
mispredicted paths are excluded from classification, as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import DynInst, DynState, OpClass
from repro.isa.program import SyntheticProgram, ThreadContext
from repro.reliability.ace import ACEAnalyzer


@dataclass
class ProfileResult:
    """Outcome of one offline profiling pass."""

    program_name: str
    instructions: int
    pc_table: dict[int, bool] = field(default_factory=dict)
    ace_instances: dict[int, int] = field(default_factory=dict)
    unace_instances: dict[int, int] = field(default_factory=dict)

    @property
    def accuracy(self) -> float:
        """Committed-instance accuracy of the PC-based classification —
        the quantity reported in Table 1."""
        correct = 0
        total = 0
        for pc, is_ace in self.pc_table.items():
            a = self.ace_instances.get(pc, 0)
            u = self.unace_instances.get(pc, 0)
            total += a + u
            correct += a if is_ace else u
        return correct / total if total else 0.0

    @property
    def ace_fraction(self) -> float:
        """Fraction of committed dynamic instances that are oracle-ACE."""
        a = sum(self.ace_instances.values())
        u = sum(self.unace_instances.values())
        return a / (a + u) if (a + u) else 0.0

    @property
    def static_ace_fraction(self) -> float:
        """Fraction of profiled PCs tagged ACE."""
        if not self.pc_table:
            return 0.0
        return sum(self.pc_table.values()) / len(self.pc_table)

    def predict(self, pc: int) -> bool:
        """Predicted ACE-ness of a PC (unseen PCs default to ACE — the
        conservative, false-positive-only choice)."""
        return self.pc_table.get(pc, True)


def profile_program(
    program: SyntheticProgram,
    n_instructions: int = 100_000,
    window: int = 40_000,
    seed: int = 0,
) -> ProfileResult:
    """Run the offline vulnerability profiling pass.

    Walks the architecturally correct path for ``n_instructions``,
    feeding the committed stream through the post-retirement ACE
    analyzer, and aggregates per-PC instance counts.
    """
    if n_instructions <= 0:
        raise ValueError("n_instructions must be positive")
    result = ProfileResult(program_name=program.name, instructions=n_instructions)

    def on_resolve(dyn: DynInst) -> None:
        pc = dyn.pc
        if dyn.ace:
            result.ace_instances[pc] = result.ace_instances.get(pc, 0) + 1
            result.pc_table[pc] = True
        else:
            result.unace_instances[pc] = result.unace_instances.get(pc, 0) + 1
            result.pc_table.setdefault(pc, False)

    analyzer = ACEAnalyzer(num_threads=1, window_size=window, resolve_cb=on_resolve)
    ctx = ThreadContext(program, seed=seed)
    for i in range(n_instructions):
        st = ctx.peek()
        dyn = DynInst(tag=i, thread=0, static=st, stream_pos=ctx.stream_pos)
        dyn.state = DynState.COMMITTED
        if st.opclass.is_control:
            taken, target = ctx.resolve_control(st)
            ctx.advance_control(st, taken, target)
        else:
            ctx.advance()
        analyzer.commit(dyn, cycle=i)
    analyzer.flush(final_cycle=n_instructions)
    return result


def apply_profile(program: SyntheticProgram, profile: ProfileResult) -> int:
    """Write the profiled ACE bit into the program image's ``ace_hint``
    (the paper's 1-bit ISA extension).  Returns the number of static
    instructions tagged un-ACE."""
    n_unace = 0
    for st in program.all_insts():
        st.ace_hint = profile.predict(st.pc)
        if not st.ace_hint:
            n_unace += 1
    return n_unace


def profile_and_apply(
    program: SyntheticProgram,
    n_instructions: int = 100_000,
    window: int = 40_000,
    seed: int = 0,
) -> ProfileResult:
    """Convenience: profile then tag the program image."""
    result = profile_program(program, n_instructions, window, seed)
    apply_profile(program, result)
    return result
