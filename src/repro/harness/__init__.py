"""Experiment harness: scaled runs, per-figure drivers and reporting."""

from repro.harness.runner import (
    BenchScale,
    get_programs,
    mix_harmonic_ipc,
    run_sim,
    single_thread_ipc,
)
from repro.harness import experiments
from repro.harness.report import format_table, save_report
from repro.harness.charts import hbar_chart, sparkline, strip_chart
from repro.harness.replication import Replicated, replicate, replicated_ratio
from repro.harness.trace import PipelineTracer, TraceEvent

# Imported last: the parallel engine builds on the sweep helpers and the
# experiment suite registry above.
from repro.harness.parallel import (
    CheckpointShard,
    SweepRun,
    parallel_figures,
    parallel_replicate,
    parallel_sweep,
)

__all__ = [
    "BenchScale",
    "run_sim",
    "get_programs",
    "single_thread_ipc",
    "mix_harmonic_ipc",
    "experiments",
    "format_table",
    "save_report",
    "sparkline",
    "hbar_chart",
    "strip_chart",
    "replicate",
    "replicated_ratio",
    "Replicated",
    "PipelineTracer",
    "TraceEvent",
    "CheckpointShard",
    "SweepRun",
    "parallel_figures",
    "parallel_replicate",
    "parallel_sweep",
]
