"""Multi-seed replication for statistical confidence.

The paper reports single SimPoint-based runs; for a simulator study it
is good practice to replicate each data point over several workload
seeds and report mean ± stddev. ``replicate`` runs one configuration
across seeds and aggregates any numeric metric extracted from the
results.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import SimulationResult
from repro.harness.runner import BenchScale, run_sim
from repro.harness.sweep import normalize_value

#: Default extractors shared with :func:`repro.harness.parallel.parallel_replicate`.
DEFAULT_METRICS: dict[str, Callable[[SimulationResult], float]] = {
    "ipc": lambda r: r.ipc,
    "iq_avf": lambda r: r.iq_avf,
}


@dataclass(frozen=True)
class Replicated:
    """Mean/stddev summary of one metric over seeds."""

    metric: str
    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values))

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        if self.n <= 1:
            return 0.0
        return float(np.std(self.values, ddof=1) / np.sqrt(self.n))

    def ci95(self) -> tuple[float, float]:
        """~95% confidence interval (normal approximation)."""
        half = 1.96 * self.sem
        return (self.mean - half, self.mean + half)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.metric}: {self.mean:.4f} ± {self.std:.4f} (n={self.n})"


def replicate(
    mix_name: str,
    scale: BenchScale,
    seeds: Sequence[int],
    metrics: dict[str, Callable[[SimulationResult], float]] | None = None,
    **run_kwargs,
) -> dict[str, Replicated]:
    """Run one configuration across seeds; aggregate the metrics.

    ``metrics`` maps a name to an extractor over
    :class:`SimulationResult`; defaults to IPC and IQ AVF.
    """
    if not seeds:
        raise ValueError("at least one seed is required")
    if metrics is None:
        metrics = dict(DEFAULT_METRICS)
    samples: dict[str, list[float]] = {name: [] for name in metrics}
    for seed in seeds:
        seeded = dataclasses.replace(scale, seed=seed)
        result = run_sim(mix_name, seeded, **run_kwargs)
        for name, extract in metrics.items():
            samples[name].append(float(extract(result)))
    return {
        name: Replicated(metric=name, values=tuple(vals))
        for name, vals in samples.items()
    }


def replicated_ratio(
    mix_name: str,
    scale: BenchScale,
    seeds: Sequence[int],
    metric: Callable[[SimulationResult], float],
    baseline_kwargs: dict | None = None,
    **run_kwargs,
) -> Replicated:
    """Per-seed normalized metric (treatment / baseline), aggregated.

    Pairing by seed removes cross-seed workload variance, which is the
    right way to replicate the paper's normalized figures.
    """
    if not seeds:
        raise ValueError("at least one seed is required")
    baseline_kwargs = baseline_kwargs or {}
    ratios = []
    for seed in seeds:
        seeded = dataclasses.replace(scale, seed=seed)
        base = run_sim(mix_name, seeded, **baseline_kwargs)
        treat = run_sim(mix_name, seeded, **run_kwargs)
        # A zero baseline metric yields NaN + a RuntimeWarning (see
        # normalize_value) — it must not read as a perfect reduction.
        ratios.append(
            normalize_value(float(metric(treat)), float(metric(base)), "ratio")
        )
    return Replicated(metric="ratio", values=tuple(ratios))
