"""Worker heartbeats and parent-side fleet health.

Complements :mod:`repro.telemetry.relay`: the relay moves *simulation*
telemetry across the process boundary, this module moves *liveness*.

* **Worker side** — :class:`HeartbeatEmitter` hooks the worker's
  ambient bus and ships a heartbeat through the relay queue at most
  every ``interval_s`` seconds of wall time, driven by
  ``interval.close`` events (intervals close every couple thousand
  cycles, so the cadence costs nothing extra).  Each heartbeat carries
  cycles simulated in the current point, the instantaneous cycles/s,
  resident set size from ``/proc/self/statm``, the current point key,
  and wall time spent in the point.  Point start/end send immediate
  unthrottled beats so the parent learns about hand-offs promptly.
* **Parent side** — :class:`HealthMonitor` folds heartbeats into
  per-worker gauges (``worker.w<slot>.*``), re-publishes them as
  ``harness.health`` events, and answers the engine's stall question:
  a worker that *started* a point but has been silent for longer than
  ``stall_after_s`` is **stalled** — a disposition distinct from a
  timeout (the point's wall budget ran out) and surfaced as such by
  the retry machinery.

Wall-clock reads here are observability-only and never feed simulated
results, so the determinism rule is suppressed.
"""
# lint: disable-file=determinism

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.telemetry.bus import EventBus, EventOrigin, Subscription
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.relay import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_QUEUE_SIZE,
    DEFAULT_RELAY_TOPICS,
    WorkerRelay,
)
from repro.telemetry.topics import (
    TOPIC_INTERVAL_CLOSE,
    TOPIC_RELIABILITY_ESTIMATE,
    TOPIC_WORKER_HEALTH,
)

#: Heartbeat kinds on the wire.
BEAT_START = "start"
BEAT_TICK = "beat"
BEAT_END = "end"

#: Worker states the monitor reports.
STATE_RUNNING = "running"
STATE_IDLE = "idle"
STATE_STALLED = "stalled"
STATE_LOST = "lost"  # its pool round ended while it was still running


@dataclass(frozen=True)
class MonitorConfig:
    """Knobs for the fleet-observability plumbing of one pool run.

    ``stall_after_s`` is the heartbeat-silence threshold: a worker that
    started a point and then went quiet for longer is declared stalled.
    It defaults to 20× the heartbeat interval — generous enough for GC
    pauses and loaded CI runners, tight enough to beat any practical
    point timeout.
    """

    relay_topics: tuple[str, ...] = DEFAULT_RELAY_TOPICS
    queue_size: int = DEFAULT_QUEUE_SIZE
    batch_size: int = DEFAULT_BATCH_SIZE
    heartbeat_s: float = 0.25
    stall_after_s: float = 5.0
    serve: tuple[str, int] | None = None
    status_path: str | None = None
    #: Minimum seconds between live status-document rewrites (the final
    #: write and checkpoint-append writes bypass the throttle).
    status_write_s: float = 1.0
    #: JSONL run-log path, appended to by the engine and every worker.
    log_path: str | None = None


def rss_kb() -> float:
    """Resident set size of this process in KiB (0.0 if unreadable)."""
    try:
        with open("/proc/self/statm") as fh:
            pages = int(fh.read().split()[1])
        return float(pages * (os.sysconf("SC_PAGE_SIZE") // 1024))
    except (OSError, ValueError, IndexError, AttributeError):
        return 0.0


class HeartbeatEmitter:
    """Worker-side liveness: throttled beats through the relay queue."""

    def __init__(
        self,
        relay: WorkerRelay,
        *,
        interval_s: float = 0.25,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._relay = relay
        self._interval_s = interval_s
        self._clock = clock
        self._point: str | None = None
        self._point_start = 0.0
        self._last_beat = 0.0
        self._last_cycle = 0
        self._last_cycle_t = 0.0
        self._cycles = 0

    def attach(self, bus: EventBus) -> Subscription:
        """Drive throttled beats from the pipeline's interval closes."""
        return bus.subscribe(TOPIC_INTERVAL_CLOSE, self.on_interval)

    # ------------------------------------------------------------------
    def point_started(self, point: str) -> None:
        now = self._clock()
        self._point = point
        self._point_start = now
        self._last_beat = now
        self._last_cycle = 0
        self._last_cycle_t = now
        self._cycles = 0
        self._send(BEAT_START, now, 0.0)

    def point_finished(self) -> None:
        now = self._clock()
        self._send(BEAT_END, now, 0.0)
        self._point = None
        self._relay.flush()

    def on_interval(self, event: Any) -> None:
        end_cycle = int(event["end_cycle"])
        now = self._clock()
        if end_cycle < self._last_cycle:
            # A new simulation started within the same point (figure
            # suites run several sims per task); restart the rate base.
            self._last_cycle = 0
            self._last_cycle_t = now
        self._cycles = end_cycle
        if now - self._last_beat < self._interval_s:
            return
        dt = now - self._last_cycle_t
        rate = (end_cycle - self._last_cycle) / dt if dt > 0 else 0.0
        self._last_cycle = end_cycle
        self._last_cycle_t = now
        self._last_beat = now
        self._send(BEAT_TICK, now, rate)

    # ------------------------------------------------------------------
    def _send(self, kind: str, now: float, rate: float) -> None:
        # Flush buffered telemetry first so every beat also bounds event
        # batch latency: a slow point's interval samples reach the
        # parent mid-point at heartbeat cadence even when the batch
        # never fills.
        self._relay.flush()
        self._relay.send_health(
            {
                "kind": kind,
                "point": self._point,
                "cycles": self._cycles,
                "cycles_per_sec": rate,
                "rss_kb": rss_kb(),
                "point_wall_s": now - self._point_start if self._point else 0.0,
            }
        )


@dataclass
class WorkerHealth:
    """Last known state of one pool worker, as seen by the parent."""

    worker: int
    pid: int
    point: str | None = None
    cycles: int = 0
    cycles_per_sec: float = 0.0
    rss_kb: float = 0.0
    point_wall_s: float = 0.0
    last_seen_ms: float = 0.0
    state: str = STATE_IDLE
    beats: int = field(default=0)

    def to_dict(self, now_ms: float, stall_after_s: float) -> dict[str, Any]:
        age_s = max(0.0, (now_ms - self.last_seen_ms) / 1000.0)
        state = self.state
        if state == STATE_RUNNING and age_s > stall_after_s:
            state = STATE_STALLED
        return {
            "worker": self.worker,
            "pid": self.pid,
            "state": state,
            "point": self.point,
            "cycles": self.cycles,
            "cycles_per_sec": round(self.cycles_per_sec, 1),
            "rss_kb": self.rss_kb,
            "point_wall_s": round(self.point_wall_s, 3),
            "heartbeat_age_s": round(age_s, 3),
            "beats": self.beats,
        }


class HealthMonitor:
    """Parent-side fold of worker heartbeats into gauges and stalls."""

    def __init__(
        self,
        *,
        metrics: MetricsRegistry,
        bus: EventBus | None = None,
        stall_after_s: float = 5.0,
    ) -> None:
        self.metrics = metrics
        self._bus = bus
        self.stall_after_s = stall_after_s
        self.workers: dict[int, WorkerHealth] = {}
        self._started_points: set[str] = set()

    # ------------------------------------------------------------------
    def on_health(
        self, slot: int, pid: int, payload: dict[str, Any], arrival_ms: float
    ) -> None:
        """RelayDrain health sink: fold one heartbeat (see HealthSink)."""
        record = self.workers.get(slot)
        if record is None:
            record = self.workers.setdefault(slot, WorkerHealth(slot, pid))
        record.pid = pid
        kind = str(payload.get("kind", BEAT_TICK))
        point = payload.get("point")
        record.point = str(point) if point is not None else None
        record.cycles = int(payload.get("cycles", 0))
        record.cycles_per_sec = float(payload.get("cycles_per_sec", 0.0))
        record.rss_kb = float(payload.get("rss_kb", 0.0))
        record.point_wall_s = float(payload.get("point_wall_s", 0.0))
        record.last_seen_ms = arrival_ms
        record.beats += 1
        if kind == BEAT_END:
            record.state = STATE_IDLE
            record.point = None
        else:
            record.state = STATE_RUNNING
            if record.point is not None:
                self._started_points.add(record.point)
        self._set_gauges(record)
        if self._bus is not None:
            self._bus.republish(
                TOPIC_WORKER_HEALTH,
                {
                    "worker": slot,
                    "pid": pid,
                    "kind": kind,
                    "point": record.point,
                    "cycles": record.cycles,
                    "cycles_per_sec": record.cycles_per_sec,
                    "rss_kb": record.rss_kb,
                    "point_wall_s": record.point_wall_s,
                },
                cycle=record.cycles,
                stage="",
                origin=EventOrigin(worker=slot, pid=pid, ms=arrival_ms),
            )

    def attach(self, bus: EventBus) -> Subscription:
        """Fold relayed AVF samples into per-worker gauges.

        Subscribes to the parent bus and reacts only to events carrying
        an origin (i.e. relayed from a worker), so the parent's own
        in-process events are untouched.
        """
        return bus.subscribe(
            (TOPIC_INTERVAL_CLOSE, TOPIC_RELIABILITY_ESTIMATE),
            self._on_relayed,
            predicate=lambda event: event.origin is not None,
        )

    # ------------------------------------------------------------------
    def _on_relayed(self, event: Any) -> None:
        assert event.origin is not None
        scope = self.metrics.child(f"worker.w{event.origin.worker}")
        if event.topic == TOPIC_INTERVAL_CLOSE.name:
            scope.gauge(
                "online_iq_avf", help="Latest relayed online IQ AVF estimate."
            ).set(float(event["online_avf_estimate"]))
            scope.gauge(
                "online_rob_avf", help="Latest relayed online ROB AVF estimate."
            ).set(float(event["online_rob_estimate"]))
        else:
            scope.gauge(
                f"est_{event['structure']}",
                help="Latest relayed DVM online AVF estimate for one structure.",
            ).set(float(event["estimate"]))

    def _set_gauges(self, record: WorkerHealth) -> None:
        scope = self.metrics.child(f"worker.w{record.worker}")
        scope.gauge("cycles", help="Cycles simulated in the current point.").set(
            record.cycles
        )
        scope.gauge("cycles_per_sec", help="Instantaneous simulation rate.").set(
            record.cycles_per_sec
        )
        scope.gauge("rss_kb", help="Worker resident set size (KiB).").set(
            record.rss_kb
        )
        scope.gauge("point_wall_s", help="Wall seconds in the current point.").set(
            record.point_wall_s
        )
        self.metrics.gauge(
            "fleet.workers", help="Distinct pool workers seen this run."
        ).set(len(self.workers))

    # ------------------------------------------------------------------
    def begin_round(self) -> None:
        """Reset point attribution at the start of a retry round.

        A fresh pool round retries points whose previous attempt died or
        stalled; without this reset, a stale RUNNING record (from the
        worker that died holding the point) would match the retried
        point's key and trip an immediate false stall.  Workers still
        marked running belong to the torn-down pool, so they become
        :data:`STATE_LOST` until (if ever) they beat again.
        """
        self._started_points.clear()
        for record in self.workers.values():
            if record.state == STATE_RUNNING:
                record.state = STATE_LOST
                record.point = None

    def started(self, point: str) -> bool:
        """True when any worker ever sent a start beat for ``point``."""
        return point in self._started_points

    def stalled_worker(
        self, point: str, now_ms: float
    ) -> tuple[WorkerHealth, float] | None:
        """The worker stalled on ``point``, with its silence in seconds.

        Returns None while the point is unstarted, running healthily,
        or already handed back.
        """
        for record in self.workers.values():
            if record.state != STATE_RUNNING or record.point != point:
                continue
            age_s = (now_ms - record.last_seen_ms) / 1000.0
            if age_s > self.stall_after_s:
                return record, age_s
        return None

    def to_doc(self, now_ms: float) -> list[dict[str, Any]]:
        """JSON-safe per-worker rows for the status document."""
        return [
            self.workers[slot].to_dict(now_ms, self.stall_after_s)
            for slot in sorted(self.workers)
        ]
