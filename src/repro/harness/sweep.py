"""Generic parameter sweeps over simulation configurations.

``sweep`` runs the cartesian product of parameter axes through
:func:`repro.harness.runner.run_sim` and extracts metrics into flat
rows — the utility behind custom exploration beyond the paper's fixed
figures::

    rows = sweep(
        "MEM-A", scale,
        axes={"scheduler": ["oldest", "visa"], "dispatch": [None, "opt2"]},
        metrics={"ipc": lambda r: r.ipc, "avf": lambda r: r.iq_avf},
    )

The grid-planning and row-assembly helpers (:func:`grid_points`,
:func:`extract_metrics`, :func:`assemble_row`) are shared with the
process-pool engine in :mod:`repro.harness.parallel`, which is what
guarantees ``--jobs N`` output is byte-identical to a serial sweep.
"""

from __future__ import annotations

import itertools
import warnings
from collections.abc import Callable, Mapping, Sequence

from repro.core.pipeline import SimulationResult
from repro.harness.runner import BenchScale, run_sim

#: Named metric extractors usable from the CLI (``repro sweep
#: --metric NAME``) and anywhere a picklable metric reference beats an
#: inline lambda.
NAMED_METRICS: dict[str, Callable[[SimulationResult], float]] = {
    "ipc": lambda r: r.ipc,
    "iq_avf": lambda r: r.iq_avf,
    "max_iq_avf": lambda r: r.max_iq_avf,
    "rob_avf": lambda r: r.rob_avf,
    "max_online_estimate": lambda r: r.max_online_estimate,
    "bp_accuracy": lambda r: r.bp_accuracy,
    "l1d_miss_rate": lambda r: r.l1d_miss_rate,
    "l2_misses": lambda r: float(r.l2_misses),
    "squashed": lambda r: float(r.squashed),
    "ace_fraction": lambda r: r.ace_fraction,
    "committed": lambda r: float(r.committed),
}

_DEFAULT_METRICS: dict[str, Callable[[SimulationResult], float]] = {
    name: NAMED_METRICS[name] for name in ("ipc", "iq_avf", "max_iq_avf")
}

#: Public alias; ``repro.harness.parallel`` shares the default set.
DEFAULT_METRICS = _DEFAULT_METRICS


def grid_points(axes: Mapping[str, Sequence]) -> list[dict]:
    """Ordered kwargs dicts for the cartesian product of ``axes``.

    Axis order follows the mapping's iteration order and value order is
    preserved, so the grid enumeration (and therefore row order) is
    deterministic and identical for the serial and parallel engines.
    """
    if not axes:
        raise ValueError("at least one axis is required")
    names = list(axes.keys())
    return [
        dict(zip(names, combo))
        for combo in itertools.product(*(axes[n] for n in names))
    ]


def normalize_value(value: float, denom: float, metric: str) -> float:
    """``value / denom`` with an explicit NaN for a zero baseline.

    A baseline metric of exactly ``0.0`` used to be silently mapped to
    a normalized value of ``0.0`` — indistinguishable from a perfect
    reduction.  A broken baseline now yields ``float("nan")`` plus a
    :class:`RuntimeWarning` naming the metric.
    """
    if denom == 0.0:
        warnings.warn(
            f"baseline metric {metric!r} is 0.0; normalized values are NaN "
            f"(the baseline configuration produced no signal to divide by)",
            RuntimeWarning,
            stacklevel=3,
        )
        return float("nan")
    return value / denom


def extract_metrics(
    metrics: Mapping[str, Callable[[SimulationResult], float]],
    result: SimulationResult,
) -> dict[str, float]:
    """Raw (un-normalized) metric values of one result, in metric order."""
    return {name: float(extract(result)) for name, extract in metrics.items()}


def assemble_row(
    mix_name: str,
    kwargs: Mapping,
    metric_names: Sequence[str],
    raw: Mapping[str, float],
    baseline_raw: Mapping[str, float] | None = None,
) -> dict:
    """One sweep row from raw metric values (normalizing if asked).

    Key order is ``mix``, then the axis kwargs, then the metrics —
    shared by the serial and parallel paths so rows compare equal.
    """
    row: dict = {"mix": mix_name, **kwargs}
    for name in metric_names:
        value = raw[name]
        if baseline_raw is not None:
            value = normalize_value(value, baseline_raw[name], name)
        row[name] = value
    return row


def sweep(
    mix_name: str,
    scale: BenchScale,
    axes: Mapping[str, Sequence],
    metrics: Mapping[str, Callable[[SimulationResult], float]] | None = None,
    normalize_to: Mapping | None = None,
    **fixed,
) -> list[dict]:
    """Run every combination of ``axes`` values and extract ``metrics``.

    ``axes`` maps ``run_sim`` keyword names to value lists.  When
    ``normalize_to`` (a kwargs dict) is given, each metric is divided by
    the same metric of that baseline configuration; a zero baseline
    metric normalizes to NaN with a :class:`RuntimeWarning` (it cannot
    masquerade as a perfect reduction).
    """
    metrics = dict(metrics or _DEFAULT_METRICS)
    points = grid_points(axes)
    baseline_raw = None
    if normalize_to is not None:
        baseline = run_sim(mix_name, scale, **{**fixed, **normalize_to})
        baseline_raw = extract_metrics(metrics, baseline)
    rows = []
    for kwargs in points:
        result = run_sim(mix_name, scale, **{**fixed, **kwargs})
        raw = extract_metrics(metrics, result)
        rows.append(
            assemble_row(mix_name, kwargs, list(metrics), raw, baseline_raw)
        )
    return rows


def best_row(rows: Sequence[dict], metric: str, maximize: bool = True) -> dict:
    """The row with the extremal value of ``metric``."""
    if not rows:
        raise ValueError("no rows")
    key = lambda r: r[metric]  # noqa: E731
    return max(rows, key=key) if maximize else min(rows, key=key)


def pareto_front(
    rows: Sequence[dict], minimize: str, maximize: str
) -> list[dict]:
    """Rows not dominated in the (minimize, maximize) plane — e.g. the
    AVF/IPC trade-off frontier of a mitigation sweep."""
    front = []
    for row in rows:
        dominated = any(
            other[minimize] <= row[minimize]
            and other[maximize] >= row[maximize]
            and (other[minimize] < row[minimize] or other[maximize] > row[maximize])
            for other in rows
        )
        if not dominated:
            front.append(row)
    return sorted(front, key=lambda r: r[minimize])
