"""Generic parameter sweeps over simulation configurations.

``sweep`` runs the cartesian product of parameter axes through
:func:`repro.harness.runner.run_sim` and extracts metrics into flat
rows — the utility behind custom exploration beyond the paper's fixed
figures::

    rows = sweep(
        "MEM-A", scale,
        axes={"scheduler": ["oldest", "visa"], "dispatch": [None, "opt2"]},
        metrics={"ipc": lambda r: r.ipc, "avf": lambda r: r.iq_avf},
    )
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Mapping, Sequence

from repro.core.pipeline import SimulationResult
from repro.harness.runner import BenchScale, run_sim

_DEFAULT_METRICS: dict[str, Callable[[SimulationResult], float]] = {
    "ipc": lambda r: r.ipc,
    "iq_avf": lambda r: r.iq_avf,
    "max_iq_avf": lambda r: r.max_iq_avf,
}


def sweep(
    mix_name: str,
    scale: BenchScale,
    axes: Mapping[str, Sequence],
    metrics: Mapping[str, Callable[[SimulationResult], float]] | None = None,
    normalize_to: Mapping | None = None,
    **fixed,
) -> list[dict]:
    """Run every combination of ``axes`` values and extract ``metrics``.

    ``axes`` maps ``run_sim`` keyword names to value lists.  When
    ``normalize_to`` (a kwargs dict) is given, each metric is divided by
    the same metric of that baseline configuration.
    """
    if not axes:
        raise ValueError("at least one axis is required")
    metrics = dict(metrics or _DEFAULT_METRICS)
    baseline = None
    if normalize_to is not None:
        baseline = run_sim(mix_name, scale, **{**fixed, **normalize_to})
    names = list(axes.keys())
    rows = []
    for combo in itertools.product(*(axes[n] for n in names)):
        kwargs = dict(zip(names, combo))
        result = run_sim(mix_name, scale, **{**fixed, **kwargs})
        row: dict = {"mix": mix_name, **kwargs}
        for mname, extract in metrics.items():
            value = float(extract(result))
            if baseline is not None:
                denom = float(extract(baseline))
                value = value / denom if denom else 0.0
            row[mname] = value
        rows.append(row)
    return rows


def best_row(rows: Sequence[dict], metric: str, maximize: bool = True) -> dict:
    """The row with the extremal value of ``metric``."""
    if not rows:
        raise ValueError("no rows")
    key = lambda r: r[metric]  # noqa: E731
    return max(rows, key=key) if maximize else min(rows, key=key)


def pareto_front(
    rows: Sequence[dict], minimize: str, maximize: str
) -> list[dict]:
    """Rows not dominated in the (minimize, maximize) plane — e.g. the
    AVF/IPC trade-off frontier of a mitigation sweep."""
    front = []
    for row in rows:
        dominated = any(
            other[minimize] <= row[minimize]
            and other[maximize] >= row[maximize]
            and (other[minimize] < row[minimize] or other[maximize] > row[maximize])
            for other in rows
        )
        if not dominated:
            front.append(row)
    return sorted(front, key=lambda r: r[minimize])
