"""Per-figure/table experiment drivers.

Each function regenerates the data behind one table or figure of the
paper and returns plain data structures (lists of dicts) that the
bench harness formats and records in EXPERIMENTS.md.  Paper reference
values are attached where the paper states them, so every bench can
check reproduction *shape* (who wins, by roughly what factor).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.harness.runner import (
    BenchScale,
    get_programs,
    mix_harmonic_ipc,
    run_sim,
    single_thread_ipc,
)
from repro.isa.generator import generate_program
from repro.isa.personalities import PERSONALITIES
from repro.reliability.avf import Structure
from repro.reliability.profiling import profile_program
from repro.workloads import CATEGORIES, get_mix

#: The three VISA configurations of Figures 5/6 (plus the baseline).
VISA_CONFIGS = {
    "baseline": dict(scheduler="oldest", dispatch=None),
    "VISA": dict(scheduler="visa", dispatch=None),
    "VISA+opt1": dict(scheduler="visa", dispatch="opt1"),
    "VISA+opt2": dict(scheduler="visa", dispatch="opt2"),
}

FETCH_POLICIES = ("stall", "dg", "pdg", "flush")

DVM_THRESHOLD_FRACTIONS = (0.7, 0.6, 0.5, 0.4, 0.3)


def _category_avg(scale: BenchScale, category: str, metric) -> float:
    vals = [metric(m.name) for m in scale.mixes(category)]
    return float(np.mean(vals))


# ----------------------------------------------------------------------
# Figure 1 — structure AVF profile
# ----------------------------------------------------------------------
def fig1_structure_avf(scale: BenchScale) -> list[dict]:
    """AVF of IQ / ROB / RF / FU per workload category (baseline).

    Paper: the IQ is the hot-spot (highest AVF of the structures
    studied) on every category.
    """
    rows = []
    for cat in CATEGORIES:
        accum = {s: [] for s in Structure}
        for mix in scale.mixes(cat):
            res = run_sim(mix.name, scale)
            for s in Structure:
                accum[s].append(res.overall_avf[s])
        rows.append(
            {
                "category": cat,
                **{s.name: float(np.mean(accum[s])) for s in Structure},
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 2 — ready queue length histogram + ACE percentage
# ----------------------------------------------------------------------
def fig2_ready_queue(scale: BenchScale, mix_name: str = "CPU-A") -> dict:
    """Histogram of ready-queue length and ACE% of ready instructions.

    Paper (96-entry IQ, width 8, CPU group A): hill-shaped RQL
    distribution, ~60% of ready instructions are ACE, higher ACE% at
    short RQL.
    """
    res = run_sim(mix_name, scale, collect_hist=True)
    hist = res.ready_hist
    ace = res.ready_hist_ace
    total = hist.sum()
    lengths = np.arange(len(hist))
    weighted = hist * lengths
    ace_pct = np.divide(ace, weighted, out=np.zeros_like(ace), where=weighted > 0)
    mean_rql = float(weighted.sum() / max(total, 1))
    overall_ace_pct = float(ace.sum() / max(weighted.sum(), 1))
    return {
        "mix": mix_name,
        "hist": (hist / max(total, 1)).tolist(),
        "ace_pct": ace_pct.tolist(),
        "mean_rql": mean_rql,
        "max_rql": int(np.nonzero(hist)[0].max()) if total else 0,
        "overall_ace_pct": overall_ace_pct,
    }


# ----------------------------------------------------------------------
# Table 1 — accuracy of PC-based ACE classification
# ----------------------------------------------------------------------
def table1_pc_accuracy(scale: BenchScale) -> list[dict]:
    """Per-benchmark committed-instance accuracy (paper avg: 93.7%)."""
    rows = []
    for name in sorted(PERSONALITIES):
        program = generate_program(name, seed=scale.seed)
        prof = profile_program(
            program,
            n_instructions=scale.profile_instructions,
            window=scale.profile_window,
        )
        rows.append(
            {
                "benchmark": name,
                "accuracy": prof.accuracy,
                "paper": PERSONALITIES[name].ref_pc_accuracy,
                "ace_fraction": prof.ace_fraction,
            }
        )
    avg = float(np.mean([r["accuracy"] for r in rows]))
    paper_avg = float(np.mean([r["paper"] for r in rows]))
    rows.append({"benchmark": "AVG", "accuracy": avg, "paper": paper_avg, "ace_fraction": None})
    return rows


# ----------------------------------------------------------------------
# Figures 5 & 6 — VISA / opt1 / opt2 under the fetch policies
# ----------------------------------------------------------------------
def fig5_visa_configs(scale: BenchScale, fetch_policy: str = "icount") -> list[dict]:
    """Normalized IQ AVF and throughput IPC of the three schemes.

    Paper (ICOUNT): VISA ≈ 0.95x AVF / 1.01x IPC; VISA+opt1 ≈ 0.66x AVF
    on CPU at equal IPC but hurts MIX/MEM; VISA+opt2 ≈ 0.52x AVF at
    1.01x IPC on average (CPU 0.67x, MIX/MEM 0.44x).
    """
    rows = []
    for cat in CATEGORIES:
        base_avf, base_ipc = {}, {}
        for mix in scale.mixes(cat):
            res = run_sim(mix.name, scale, fetch_policy=fetch_policy)
            base_avf[mix.name], base_ipc[mix.name] = res.iq_avf, res.ipc
        for config_name, kw in VISA_CONFIGS.items():
            if config_name == "baseline":
                continue
            avfs, ipcs = [], []
            for mix in scale.mixes(cat):
                res = run_sim(mix.name, scale, fetch_policy=fetch_policy, **kw)
                avfs.append(res.iq_avf / max(base_avf[mix.name], 1e-9))
                ipcs.append(res.ipc / max(base_ipc[mix.name], 1e-9))
            rows.append(
                {
                    "category": cat,
                    "config": config_name,
                    "fetch_policy": fetch_policy,
                    "norm_iq_avf": float(np.mean(avfs)),
                    "norm_ipc": float(np.mean(ipcs)),
                }
            )
    return rows


def fig6_fetch_policies(scale: BenchScale) -> list[dict]:
    """Figure 5 repeated under STALL/DG/PDG/FLUSH (paper: avg 36% AVF
    reduction at ~1% IPC cost; smaller reductions under FLUSH on
    MIX/MEM because its baseline AVF is already low)."""
    rows = []
    for policy in FETCH_POLICIES:
        rows.extend(fig5_visa_configs(scale, fetch_policy=policy))
    return rows


# ----------------------------------------------------------------------
# Figures 8, 9 — DVM threshold sweeps
# ----------------------------------------------------------------------
def dvm_scale(scale: BenchScale) -> BenchScale:
    """DVM experiments need PVE resolution: finer intervals and a longer
    run than the default scale (20 post-warm-up intervals), with
    ``t_cache_miss`` rescaled to the shorter interval."""
    return dataclasses.replace(
        scale,
        interval_cycles=1_000,  # lint: disable=paper-fidelity
        max_cycles=max(scale.max_cycles, 24_000),
        warmup_cycles=4_000,
        t_cache_miss=max(scale.t_cache_miss // 2, 1),
    )


def fig8_dvm(scale: BenchScale, fetch_policy: str = "icount") -> list[dict]:
    """PVE and performance impact of DVM across reliability targets.

    Paper (ICOUNT, target 0.5·MaxAVF): PVE drops from 72/79/55% to ~1%
    on CPU/MIX/MEM; throughput cost grows as the target tightens; MIX
    and MEM can *gain* throughput; MIX loses the most harmonic IPC
    (fairness bias toward CPU-bound threads).
    """
    scale = dvm_scale(scale)
    rows = []
    for cat in CATEGORIES:
        for frac in DVM_THRESHOLD_FRACTIONS:
            pve_base, pve_dvm, dthr, dhar = [], [], [], []
            for mix in scale.mixes(cat):
                base = run_sim(mix.name, scale, fetch_policy=fetch_policy)
                # PVE is judged against the measured (oracle) AVF; the
                # controller's internal target is the same fraction of
                # the hardware-observable online maximum.
                target = frac * base.max_iq_avf
                online_target = frac * base.max_online_estimate
                dvm = run_sim(
                    mix.name, scale, fetch_policy=fetch_policy, dvm_target=online_target
                )
                pve_base.append(base.pve(target))
                pve_dvm.append(dvm.pve(target))
                dthr.append(1.0 - dvm.ipc / max(base.ipc, 1e-9))
                h_base = mix_harmonic_ipc(mix.name, scale, base, fetch_policy)
                h_dvm = mix_harmonic_ipc(mix.name, scale, dvm, fetch_policy)
                dhar.append(1.0 - h_dvm / max(h_base, 1e-9))
            rows.append(
                {
                    "category": cat,
                    "threshold": frac,
                    "fetch_policy": fetch_policy,
                    "pve_baseline": float(np.mean(pve_base)),
                    "pve_dvm": float(np.mean(pve_dvm)),
                    "throughput_degradation": float(np.mean(dthr)),
                    "harmonic_degradation": float(np.mean(dhar)),
                }
            )
    return rows


def fig9_dvm_flush(scale: BenchScale) -> list[dict]:
    """Figure 8 with FLUSH as the baseline fetch policy (paper: DVM
    still works with FLUSH active concurrently)."""
    return fig8_dvm(scale, fetch_policy="flush")


# ----------------------------------------------------------------------
# Figure 10 — DVM vs the Section 2 optimizations
# ----------------------------------------------------------------------
def fig10_comparison(scale: BenchScale, fetch_policy: str = "icount") -> list[dict]:
    """PVE of VISA / VISA+opt1 / VISA+opt2 / DVM(static) / DVM(dynamic).

    Paper: the open-loop schemes leave high PVE; static-ratio DVM
    manages it partially; dynamic DVM always wins.
    """
    scale = dvm_scale(scale)
    rows = []
    schemes = ["VISA", "VISA+opt1", "VISA+opt2", "DVM-static", "DVM-dynamic"]
    for cat in CATEGORIES:
        for frac in DVM_THRESHOLD_FRACTIONS:
            accum = {s: [] for s in schemes}
            for mix in scale.mixes(cat):
                base = run_sim(mix.name, scale, fetch_policy=fetch_policy)
                target = frac * base.max_iq_avf
                online_target = frac * base.max_online_estimate
                for scheme in schemes[:3]:
                    res = run_sim(
                        mix.name, scale, fetch_policy=fetch_policy,
                        **VISA_CONFIGS[scheme],
                    )
                    accum[scheme].append(res.pve(target))
                dyn = run_sim(
                    mix.name, scale, fetch_policy=fetch_policy, dvm_target=online_target
                )
                accum["DVM-dynamic"].append(dyn.pve(target))
                # Paper sets the static ratio to the dynamic run's average.
                ratio = dyn.dvm_mean_ratio or 2.0
                stat = run_sim(
                    mix.name, scale, fetch_policy=fetch_policy,
                    dvm_target=online_target, dvm_static_ratio=ratio,
                )
                accum["DVM-static"].append(stat.pve(target))
            row = {"category": cat, "threshold": frac}
            row.update({s: float(np.mean(accum[s])) for s in schemes})
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Ablations called out in DESIGN.md
# ----------------------------------------------------------------------
def ablation_ipc_regions(scale: BenchScale, regions=(2, 4, 8)) -> list[dict]:
    """Paper: 4 IPC regions outperform other region counts (Fig. 3)."""
    rows = []
    for n in regions:
        s = dataclasses.replace(scale, num_ipc_regions=n)
        for cat in CATEGORIES:
            avfs, ipcs = [], []
            for mix in s.mixes(cat):
                base = run_sim(mix.name, s)
                res = run_sim(mix.name, s, scheduler="visa", dispatch="opt1")
                avfs.append(res.iq_avf / max(base.iq_avf, 1e-9))
                ipcs.append(res.ipc / max(base.ipc, 1e-9))
            rows.append(
                {
                    "regions": n,
                    "category": cat,
                    "norm_iq_avf": float(np.mean(avfs)),
                    "norm_ipc": float(np.mean(ipcs)),
                }
            )
    return rows


def ablation_t_cache_miss(scale: BenchScale, thresholds=(1, 8, 40, 120, 1_000_000)) -> list[dict]:
    """Sensitivity of opt2 to Tcache_miss (paper chose 16 per 10K
    cycles; the last value effectively disables the FLUSH trigger)."""
    rows = []
    for t in thresholds:
        s = dataclasses.replace(scale, t_cache_miss=t)
        for cat in CATEGORIES:
            avfs, ipcs = [], []
            for mix in s.mixes(cat):
                base = run_sim(mix.name, s)
                res = run_sim(mix.name, s, scheduler="visa", dispatch="opt2")
                avfs.append(res.iq_avf / max(base.iq_avf, 1e-9))
                ipcs.append(res.ipc / max(base.ipc, 1e-9))
            rows.append(
                {
                    "t_cache_miss": t,
                    "category": cat,
                    "norm_iq_avf": float(np.mean(avfs)),
                    "norm_ipc": float(np.mean(ipcs)),
                }
            )
    return rows


def ablation_trigger_fraction(scale: BenchScale, fractions=(0.8, 0.9, 0.95)) -> list[dict]:
    """DVM trigger threshold sensitivity (paper chose 90% of target)."""
    rows = []
    for f in fractions:
        s = dataclasses.replace(scale, dvm_trigger_fraction=f)
        for cat in CATEGORIES:
            pves, dthr = [], []
            for mix in s.mixes(cat):
                base = run_sim(mix.name, s)
                target = 0.5 * base.max_iq_avf
                dvm = run_sim(mix.name, s, dvm_target=0.5 * base.max_online_estimate)
                pves.append(dvm.pve(target))
                dthr.append(1.0 - dvm.ipc / max(base.ipc, 1e-9))
            rows.append(
                {
                    "trigger_fraction": f,
                    "category": cat,
                    "pve": float(np.mean(pves)),
                    "throughput_degradation": float(np.mean(dthr)),
                }
            )
    return rows


def ablation_interval_size(scale: BenchScale, intervals=(500, 2_000, 7_000)) -> list[dict]:
    """Adaptation-interval sensitivity of opt1 (paper chose 10K cycles:
    too large is sluggish, too small is jittery)."""
    rows = []
    for iv in intervals:
        s = dataclasses.replace(scale, interval_cycles=iv, warmup_cycles=iv)
        for cat in CATEGORIES:
            avfs, ipcs = [], []
            for mix in s.mixes(cat):
                base = run_sim(mix.name, s)
                res = run_sim(mix.name, s, scheduler="visa", dispatch="opt1")
                avfs.append(res.iq_avf / max(base.iq_avf, 1e-9))
                ipcs.append(res.ipc / max(base.ipc, 1e-9))
            rows.append(
                {
                    "interval": iv,
                    "category": cat,
                    "norm_iq_avf": float(np.mean(avfs)),
                    "norm_ipc": float(np.mean(ipcs)),
                }
            )
    return rows


# ----------------------------------------------------------------------
# Suite registry (CLI ``reproduce``/``figures`` and the parallel engine)
# ----------------------------------------------------------------------
#: name -> (driver, title).  Each driver takes a BenchScale and returns
#: a list of row dicts; the parallel engine runs one suite per worker.
SUITES = {
    "fig1": (fig1_structure_avf, "Figure 1 — structure AVF per category"),
    "fig5": (fig5_visa_configs, "Figure 5 — VISA configs (ICOUNT)"),
    "fig6": (fig6_fetch_policies, "Figure 6 — VISA configs under fetch policies"),
    "fig8": (fig8_dvm, "Figure 8 — DVM sweep (ICOUNT)"),
    "fig9": (fig9_dvm_flush, "Figure 9 — DVM sweep (FLUSH)"),
    "fig10": (fig10_comparison, "Figure 10 — PVE of all schemes"),
    "table1": (table1_pc_accuracy, "Table 1 — PC classification accuracy"),
}


# ----------------------------------------------------------------------
# Workload characterization (single-thread, per Table 1 benchmark)
# ----------------------------------------------------------------------
def characterize_benchmarks(scale: BenchScale, names=None) -> list[dict]:
    """Single-thread characterization of the synthetic benchmarks.

    Reports, per personality: solo IPC, branch accuracy, L1D miss rate,
    L2 misses, ACE fraction and solo IQ AVF — the quantities that place
    each benchmark in its Table 3 category.  Useful for recalibrating
    personalities and for sanity-checking CPU/MEM separation.
    """
    from repro.config import MachineConfig
    from repro.core.pipeline import SMTPipeline
    from repro.isa.generator import ProgramGenerator
    from repro.isa.personalities import get_personality
    from repro.reliability.profiling import profile_and_apply

    rows = []
    for name in names or sorted(PERSONALITIES):
        program = ProgramGenerator(get_personality(name), seed=scale.seed).generate()
        prof = profile_and_apply(
            program,
            n_instructions=scale.profile_instructions,
            window=scale.profile_window,
        )
        pipe = SMTPipeline(
            [program],
            machine=MachineConfig(num_threads=1),
            sim=scale.sim_config(),
        )
        res = pipe.run()
        rows.append(
            {
                "benchmark": name,
                "category": PERSONALITIES[name].category,
                "ipc": res.ipc,
                "bp_acc": res.bp_accuracy,
                "l1d_miss": res.l1d_miss_rate,
                "l2_misses": res.l2_misses,
                "ace_frac": prof.ace_fraction,
                "iq_avf": res.iq_avf,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Extension — IQ size sensitivity
# ----------------------------------------------------------------------
def ext_iq_size_sensitivity(scale: BenchScale, sizes=(48, 96, 192)) -> list[dict]:
    """How the IQ's size moves its vulnerability and the VISA+opt2
    benefit (an extension beyond the paper's fixed 96-entry IQ).

    Expectation: a larger IQ buffers more ACE bits for longer (higher
    AVF exposure in absolute bit-cycles, mitigations matter more); a
    smaller IQ throttles the machine by itself.
    """
    from repro.config import MachineConfig
    from repro.core.pipeline import SMTPipeline
    from repro.reliability.resource_alloc import L2MissSensitiveAllocation

    rows = []
    for size in sizes:
        for cat in CATEGORIES:
            base_avf, base_ipc, opt_avf, opt_ipc = [], [], [], []
            for mix in scale.mixes(cat):
                programs = get_programs(mix.name, scale)
                machine = MachineConfig(num_threads=len(programs), iq_size=size)
                sim = scale.sim_config()
                base = SMTPipeline(programs, machine=machine, sim=sim).run()
                opt = SMTPipeline(
                    programs, machine=machine, sim=sim, scheduler="visa",
                    dispatch_policy=L2MissSensitiveAllocation(
                        size, commit_width=machine.commit_width,
                        t_cache_miss=scale.t_cache_miss,
                    ),
                ).run()
                base_avf.append(base.iq_avf)
                base_ipc.append(base.ipc)
                opt_avf.append(opt.iq_avf / max(base.iq_avf, 1e-9))
                opt_ipc.append(opt.ipc / max(base.ipc, 1e-9))
            rows.append(
                {
                    "iq_size": size,
                    "category": cat,
                    "base_iq_avf": float(np.mean(base_avf)),
                    "base_ipc": float(np.mean(base_ipc)),
                    "opt2_norm_avf": float(np.mean(opt_avf)),
                    "opt2_norm_ipc": float(np.mean(opt_ipc)),
                }
            )
    return rows
