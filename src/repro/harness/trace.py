"""Instruction-level pipeline tracing.

``PipelineTracer`` attaches to an :class:`~repro.core.pipeline.SMTPipeline`
and records one event row per retired (or squashed) instruction:
per-stage timestamps, ACE-ness, memory/branch outcomes. Traces can be
filtered, summarized (stage-latency breakdowns), and exported as JSONL
for external analysis.

This is a debugging/teaching aid, not part of the measured
experiments: tracing costs memory proportional to the number of
instructions and a small constant per commit.

Example::

    pipe = SMTPipeline(programs, sim=sim)
    with PipelineTracer(pipe, limit=50_000) as tracer:
        pipe.run()
    print(tracer.summary())
    tracer.to_jsonl("trace.jsonl")
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

from repro.core.pipeline import SMTPipeline
from repro.isa.instruction import DynInst, DynState
from repro.telemetry.bus import Event, Subscription
from repro.telemetry.provenance import collect_manifest
from repro.telemetry.topics import TOPIC_COMMIT, TOPIC_SQUASH


@dataclass(frozen=True)
class TraceEvent:
    """One retired or squashed dynamic instruction."""

    tag: int
    thread: int
    pc: int
    opclass: str
    fetch: int
    dispatch: int
    ready: int
    issue: int
    complete: int
    commit: int
    squashed: bool
    ace: bool | None
    ace_pred: bool
    mispredicted: bool
    l1_miss: bool
    l2_miss: bool

    @property
    def iq_residency(self) -> int:
        if self.dispatch < 0:
            return 0
        end = self.issue if self.issue >= 0 else self.complete
        return max(end - self.dispatch, 0) if end >= 0 else 0

    @property
    def total_latency(self) -> int:
        if self.fetch < 0 or self.commit < 0:
            return 0
        return self.commit - self.fetch


def _event_of(dyn: DynInst) -> TraceEvent:
    return TraceEvent(
        tag=dyn.tag,
        thread=dyn.thread,
        pc=dyn.pc,
        opclass=dyn.opclass.name,
        fetch=dyn.fetch_cycle,
        dispatch=dyn.dispatch_cycle,
        ready=dyn.ready_cycle,
        issue=dyn.issue_cycle,
        complete=dyn.complete_cycle,
        commit=dyn.commit_cycle,
        squashed=dyn.state == DynState.SQUASHED,
        ace=dyn.ace,
        ace_pred=dyn.ace_pred,
        mispredicted=dyn.mispredicted,
        l1_miss=dyn.l1_miss,
        l2_miss=dyn.l2_miss,
    )


class PipelineTracer:
    """Records TraceEvents from the pipeline's telemetry bus.

    The tracer subscribes to the ``pipeline.commit`` and
    ``pipeline.squash`` topics (it used to monkey-patch the pipeline's
    commit/squash methods; the bus gives the same per-instruction
    stream without touching pipeline internals).  The traced pipeline
    must have telemetry enabled (the default).
    """

    def __init__(self, pipeline: SMTPipeline, limit: int = 100_000,
                 include_squashed: bool = True):
        if limit <= 0:
            raise ValueError("limit must be positive")
        self.pipeline = pipeline
        self.limit = limit
        self.include_squashed = include_squashed
        self.events: list[TraceEvent] = []
        self._subs: list[Subscription] = []

    # ------------------------------------------------------------------
    def _on_commit(self, event: Event) -> None:
        if len(self.events) < self.limit:
            self.events.append(_event_of(event["inst"]))

    def _on_squash(self, event: Event) -> None:
        for dyn in event["insts"]:
            if len(self.events) >= self.limit:
                break
            self.events.append(_event_of(dyn))

    def __enter__(self) -> "PipelineTracer":
        if not self._subs:
            bus = self.pipeline.bus
            self._subs = [bus.subscribe(TOPIC_COMMIT, self._on_commit)]
            if self.include_squashed:
                self._subs.append(bus.subscribe(TOPIC_SQUASH, self._on_squash))
        return self

    def __exit__(self, *exc) -> None:
        for sub in self._subs:
            sub.close()
        self._subs = []

    # ------------------------------------------------------------------
    def committed(self) -> list[TraceEvent]:
        return [e for e in self.events if not e.squashed]

    def of_thread(self, tid: int) -> list[TraceEvent]:
        return [e for e in self.events if e.thread == tid]

    def summary(self) -> dict:
        """Aggregate stage-latency statistics over committed events."""
        done = [e for e in self.committed() if e.commit >= 0 and e.fetch >= 0]
        if not done:
            return {"events": len(self.events), "committed": 0}
        n = len(done)

        def mean(f):
            return sum(f(e) for e in done) / n

        return {
            "events": len(self.events),
            "committed": n,
            "squashed": sum(1 for e in self.events if e.squashed),
            "mean_total_latency": mean(lambda e: e.total_latency),
            "mean_iq_residency": mean(lambda e: e.iq_residency),
            "mean_fetch_to_dispatch": mean(
                lambda e: max(e.dispatch - e.fetch, 0) if e.dispatch >= 0 else 0
            ),
            "ace_fraction": sum(1 for e in done if e.ace) / n,
            "l2_miss_loads": sum(1 for e in done if e.l2_miss),
        }

    def to_jsonl(self, path: str) -> int:
        """Write one JSON object per event; returns the event count."""
        with open(path, "w") as fh:
            for event in self.events:
                fh.write(json.dumps(asdict(event)) + "\n")
        return len(self.events)

    @staticmethod
    def read_jsonl(path: str) -> list[TraceEvent]:
        events = []
        with open(path) as fh:
            for line in fh:
                if line.strip():
                    events.append(TraceEvent(**json.loads(line)))
        return events
