"""Scaled simulation runner with in-process result caching.

The paper simulates 400M instructions per data point on a C simulator;
this pure-Python reproduction scales every interval-based mechanism
proportionally (see DESIGN.md §7) so each data point costs a couple of
seconds.  ``BenchScale`` centralizes the scaling, and honours two
environment variables:

* ``REPRO_FULL=1``  — run all three Table 3 groups per category
  (default: group A per category, the paper reports category averages).
* ``REPRO_CYCLES=N`` — override the per-run cycle budget.

Results are memoized per configuration so the test-suite and the bench
harness never re-simulate the same point.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.config import MachineConfig, ReliabilityConfig, SimulationConfig
from repro.core.pipeline import SMTPipeline, SimulationResult
from repro.isa.generator import ProgramGenerator
from repro.isa.personalities import get_personality
from repro.reliability.dvm import DVMController
from repro.reliability.profiling import profile_and_apply
from repro.reliability.resource_alloc import (
    DispatchPolicy,
    DynamicIQAllocation,
    L2MissSensitiveAllocation,
)
from repro.telemetry.profiler import StageProfile, StageProfiler
from repro.telemetry.timeline import TimelineRecorder
from repro.workloads import get_mix, mixes_in_category


#: The paper's reliability parameters; BenchScale rescales the
#: window-sized ones and inherits the dimensionless ones unchanged.
_PAPER = ReliabilityConfig()


@dataclass(frozen=True)
class BenchScale:
    """Scaled-down counterpart of the paper's simulation windows."""

    max_cycles: int = 14_000
    warmup_cycles: int = 3_000
    # 1/5 of the paper's 10K-cycle interval, matching the cycle budget.
    interval_cycles: int = 2_000  # lint: disable=paper-fidelity
    ace_window: int = 4_000  # lint: disable=paper-fidelity
    profile_instructions: int = 40_000
    profile_window: int = 8_000
    # Paper: 16 L2 misses per 10K-cycle interval.  Our synthetic
    # workloads carry compulsory streaming misses the paper's SimPoints
    # did not, so the scaled threshold that separates CPU (≈55/interval)
    # from MIX/MEM (≥110) is 80; the ablation bench sweeps it.
    t_cache_miss: int = 80  # lint: disable=paper-fidelity
    num_ipc_regions: int = _PAPER.num_ipc_regions
    dvm_trigger_fraction: float = _PAPER.dvm_trigger_fraction
    seed: int = 1
    groups: tuple[str, ...] = ("A",)

    @staticmethod
    def from_env() -> "BenchScale":
        groups = ("A", "B", "C") if os.environ.get("REPRO_FULL") else ("A",)
        raw = os.environ.get("REPRO_CYCLES")
        if raw is None:
            return BenchScale(groups=groups)
        try:
            cycles = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_CYCLES must be an integer cycle count, got {raw!r}"
            ) from None
        if cycles <= 0:
            raise ValueError(f"REPRO_CYCLES must be positive, got {cycles}")
        defaults = BenchScale()
        warmup = defaults.warmup_cycles
        if cycles < defaults.max_cycles:
            # A shrunken budget keeps the default 3/14 warm-up proportion;
            # inheriting the absolute 3000-cycle warm-up would leave a
            # run like REPRO_CYCLES=2000 all warm-up (sim_config() then
            # rejects warmup_cycles >= max_cycles with an opaque error).
            warmup = max(cycles * defaults.warmup_cycles // defaults.max_cycles, 1)
        return BenchScale(max_cycles=cycles, warmup_cycles=warmup, groups=groups)

    def sim_config(self, *, collect_hist: bool = False) -> SimulationConfig:
        rel = ReliabilityConfig(
            interval_cycles=self.interval_cycles,
            ace_window=self.ace_window,
            t_cache_miss=self.t_cache_miss,
            dvm_trigger_fraction=self.dvm_trigger_fraction,
            num_ipc_regions=self.num_ipc_regions,
        )
        cfg = SimulationConfig(
            max_cycles=self.max_cycles,
            warmup_cycles=self.warmup_cycles,
            seed=self.seed,
            bp_warmup_instructions=100_000,
            reliability=rel,
            collect_ready_queue_histogram=collect_hist,
        )
        cfg.validate()
        return cfg

    def mixes(self, category: str):
        return [m for m in mixes_in_category(category) if m.group in self.groups]


# ----------------------------------------------------------------------
# Program cache (profiling mutates the program image, so profiled and
# unprofiled instantiations are cached separately).
# ----------------------------------------------------------------------
_PROGRAMS: dict = {}
_RESULTS: dict = {}
_SINGLE_IPC: dict = {}

#: Ambient event bus for ``run_sim`` pipelines.  Pool workers install
#: one (wired to the telemetry relay) via ``_init_worker`` so every
#: simulation a task runs publishes interval/reliability events the
#: relay can forward; when None (the default, and always in the
#: parent), each pipeline keeps its own private bus as before.  The
#: bus never affects results — subscribers only observe — so it is
#: deliberately *not* part of the memo key; cached points simply emit
#: nothing, which is fine because they cost no wall time to watch.
_AMBIENT_BUS = None


def set_ambient_bus(bus) -> None:
    """Install (or clear, with None) the process-wide ambient bus."""
    global _AMBIENT_BUS
    # Deliberate per-process global: each pool worker installs its own
    # bus in its own interpreter; the parent never shares it.
    _AMBIENT_BUS = bus  # lint: disable=fork-safety


def ambient_bus():
    """The process-wide ambient bus, or None outside pool workers."""
    return _AMBIENT_BUS


def clear_caches() -> None:
    """Drop all memoized programs and results (tests use this)."""
    _PROGRAMS.clear()
    _RESULTS.clear()
    _SINGLE_IPC.clear()


def get_programs(mix_name: str, scale: BenchScale, profiled: bool = True):
    """The (optionally profiled) synthetic programs of a Table 3 mix."""
    key = (mix_name, scale.seed, profiled, scale.profile_instructions, scale.profile_window)
    if key not in _PROGRAMS:
        programs = get_mix(mix_name).programs(seed=scale.seed)
        if profiled:
            for p in programs:
                profile_and_apply(
                    p,
                    n_instructions=scale.profile_instructions,
                    window=scale.profile_window,
                )
        # Deliberate per-process memo: each pool worker warms its own
        # copy via _init_worker; the parent's cache is never consulted
        # across the fork.
        _PROGRAMS[key] = programs  # lint: disable=fork-safety
    return _PROGRAMS[key]


def _make_dispatch(name: str | None, scale: BenchScale, machine: MachineConfig) -> DispatchPolicy | None:
    if name in (None, "none"):
        return None
    if name == "opt1":
        return DynamicIQAllocation(
            machine.iq_size,
            commit_width=machine.commit_width,
            num_regions=scale.num_ipc_regions,
        )
    if name == "opt1-linear":
        return DynamicIQAllocation(
            machine.iq_size,
            commit_width=machine.commit_width,
            num_regions=scale.num_ipc_regions,
            ratio_mode="linear",
        )
    if name == "opt2":
        return L2MissSensitiveAllocation(
            machine.iq_size,
            commit_width=machine.commit_width,
            num_regions=scale.num_ipc_regions,
            t_cache_miss=scale.t_cache_miss,
        )
    raise KeyError(f"unknown dispatch policy {name!r} (none/opt1/opt2)")


def _memo_key(mix_name: str, scale: BenchScale, params: dict) -> tuple:
    """The ``_RESULTS`` cache key for one ``run_sim`` configuration.

    Every behaviour-affecting kwarg participates (sorted by name, so two
    configurations can only collide by being equal), and an unhashable
    value fails here with a clear message instead of a bare
    ``TypeError`` deep inside the cache-dict lookup.
    """
    key = (mix_name, scale, tuple(sorted(params.items())))
    try:
        hash(key)
    except TypeError as exc:
        def _hashable(v) -> bool:
            try:
                hash(v)
            except TypeError:
                return False
            return True

        bad = sorted(k for k, v in params.items() if not _hashable(v))
        raise TypeError(
            f"run_sim() configuration is not hashable and cannot be memoized: "
            f"offending kwarg(s) {bad or ['scale']}; pass hashable values or "
            f"use_cache=False"
        ) from exc
    return key


def run_sim(
    mix_name: str,
    scale: BenchScale,
    *,
    fetch_policy: str = "icount",
    scheduler: str = "oldest",
    dispatch: str | None = None,
    dvm_target: float | None = None,
    dvm_static_ratio: float | None = None,
    profiled: bool = True,
    collect_hist: bool = False,
    use_cache: bool = True,
    backend: str = "reference",
) -> SimulationResult:
    """Run (or fetch from cache) one simulation data point."""
    # locals() at function entry is exactly the parameter set, so a
    # future behaviour-affecting kwarg joins the memo key automatically.
    args = locals()
    params = {
        name: value
        for name, value in args.items()
        if name not in ("mix_name", "scale", "use_cache")
    }
    key = _memo_key(mix_name, scale, params) if use_cache else None
    if key is not None and key in _RESULTS:
        return _RESULTS[key]
    machine = MachineConfig(num_threads=len(get_mix(mix_name).benchmarks))
    sim = scale.sim_config(collect_hist=collect_hist)
    dvm = None
    if dvm_target is not None:
        dvm = DVMController(
            dvm_target, config=sim.reliability, static_ratio=dvm_static_ratio
        )
    pipe = SMTPipeline(
        get_programs(mix_name, scale, profiled),
        machine=machine,
        sim=sim,
        fetch_policy=fetch_policy,
        scheduler=scheduler,
        dispatch_policy=_make_dispatch(dispatch, scale, machine),
        dvm=dvm,
        bus=_AMBIENT_BUS,
        backend=backend,
    )
    result = pipe.run()
    if key is not None:
        # Deliberate per-process memo: a worker re-running an identical
        # point hits its own cache; results return to the parent via the
        # pool, never via this dict.
        _RESULTS[key] = result  # lint: disable=fork-safety
    return result


def run_recorded(
    mix_name: str,
    scale: BenchScale,
    *,
    fetch_policy: str = "icount",
    scheduler: str = "oldest",
    dispatch: str | None = None,
    dvm_target: float | None = None,
    dvm_static_ratio: float | None = None,
    profiled: bool = True,
    profile_stages: bool = True,
    profiler: StageProfiler | None = None,
    event_limit: int = 200_000,
    backend: str = "reference",
) -> tuple[SimulationResult, TimelineRecorder, StageProfile | None]:
    """One uncached simulation with a decision timeline attached.

    Builds the same pipeline as :func:`run_sim` but subscribes a
    :class:`~repro.telemetry.timeline.TimelineRecorder` to the
    interval/decision topics and (optionally) a
    :class:`~repro.telemetry.profiler.StageProfiler`.  An explicit
    ``profiler`` (e.g. :class:`repro.perf.spans.TracingProfiler` for
    Chrome-trace export) overrides ``profile_stages``.  Results are
    never cached: the recorder and profile belong to this specific run.
    """
    machine = MachineConfig(num_threads=len(get_mix(mix_name).benchmarks))
    sim = scale.sim_config()
    dvm = None
    if dvm_target is not None:
        dvm = DVMController(
            dvm_target, config=sim.reliability, static_ratio=dvm_static_ratio
        )
    if profiler is None and profile_stages:
        profiler = StageProfiler()
    pipe = SMTPipeline(
        get_programs(mix_name, scale, profiled),
        machine=machine,
        sim=sim,
        fetch_policy=fetch_policy,
        scheduler=scheduler,
        dispatch_policy=_make_dispatch(dispatch, scale, machine),
        dvm=dvm,
        profiler=profiler,
        backend=backend,
    )
    recorder = TimelineRecorder(pipe.bus, limit=event_limit)
    with recorder:
        result = pipe.run()
    profile = profiler.report() if profiler is not None else None
    return result, recorder, profile


def run_observed(
    mix_name: str,
    scale: BenchScale,
    *,
    fetch_policy: str = "icount",
    scheduler: str = "oldest",
    dispatch: str | None = None,
    dvm_target: float | None = None,
    dvm_static_ratio: float | None = None,
    profiled: bool = True,
    event_limit: int = 200_000,
    record: bool = False,
    backend: str = "reference",
) -> tuple[SimulationResult, "ReliabilityObserver", TimelineRecorder | None]:
    """One uncached simulation with a reliability observer attached.

    Builds the same pipeline as :func:`run_sim`, subscribes a
    :class:`~repro.reliability.observe.ReliabilityObserver` to the
    ``reliability.*`` streams, and optionally (``record=True``) also a
    :class:`~repro.telemetry.timeline.TimelineRecorder` over the
    reliability + interval topics for Chrome-trace export.  Results are
    never cached: the observer belongs to this specific run.
    """
    from repro.reliability.observe import ReliabilityObserver
    from repro.telemetry.topics import (
        TOPIC_DVM_SAMPLE,
        TOPIC_INTERVAL_CLOSE,
        TOPIC_RELIABILITY_DIVERGENCE,
        TOPIC_RELIABILITY_ESTIMATE,
        TOPIC_RELIABILITY_LATE_ACE,
    )

    machine = MachineConfig(num_threads=len(get_mix(mix_name).benchmarks))
    sim = scale.sim_config()
    dvm = None
    if dvm_target is not None:
        dvm = DVMController(
            dvm_target, config=sim.reliability, static_ratio=dvm_static_ratio
        )
    pipe = SMTPipeline(
        get_programs(mix_name, scale, profiled),
        machine=machine,
        sim=sim,
        fetch_policy=fetch_policy,
        scheduler=scheduler,
        dispatch_policy=_make_dispatch(dispatch, scale, machine),
        dvm=dvm,
        backend=backend,
    )
    observer = ReliabilityObserver.for_pipeline(pipe)
    recorder = None
    if record:
        recorder = TimelineRecorder(
            pipe.bus,
            topics=(
                TOPIC_INTERVAL_CLOSE,
                TOPIC_DVM_SAMPLE,
                TOPIC_RELIABILITY_ESTIMATE,
                TOPIC_RELIABILITY_LATE_ACE,
                TOPIC_RELIABILITY_DIVERGENCE,
            ),
            limit=event_limit,
        )
        recorder.__enter__()
    try:
        result = pipe.run()
    finally:
        if recorder is not None:
            recorder.__exit__(None, None, None)
        observer.detach()
    return result, observer, recorder


def single_thread_ipc(
    benchmark: str,
    scale: BenchScale,
    program_seed: int | None = None,
    fetch_policy: str = "icount",
) -> float:
    """IPC of one benchmark running alone (for harmonic IPC).

    ``program_seed`` should match the seed the benchmark got inside its
    mix (``WorkloadMix.programs`` uses ``seed*1000 + thread_index``) so
    the single-thread baseline runs the identical program instance.
    """
    if program_seed is None:
        program_seed = scale.seed * 1000
    key = (benchmark, program_seed, scale.max_cycles, fetch_policy)
    if key not in _SINGLE_IPC:
        program = ProgramGenerator(get_personality(benchmark), seed=program_seed).generate()
        machine = MachineConfig(num_threads=1)
        pipe = SMTPipeline(
            [program], machine=machine, sim=scale.sim_config(), fetch_policy=fetch_policy
        )
        _SINGLE_IPC[key] = max(pipe.run().ipc, 1e-6)
    return _SINGLE_IPC[key]


def mix_harmonic_ipc(mix_name: str, scale: BenchScale, result: SimulationResult,
                     fetch_policy: str = "icount") -> float:
    """Harmonic IPC of one mix result against single-thread baselines."""
    from repro.metrics.stats import harmonic_ipc

    mix = get_mix(mix_name)
    singles = [
        single_thread_ipc(b, scale, program_seed=scale.seed * 1000 + i,
                          fetch_policy=fetch_policy)
        for i, b in enumerate(mix.benchmarks)
    ]
    return harmonic_ipc(result.per_thread_ipc, singles)
