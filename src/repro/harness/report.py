"""Plain-text table formatting for experiment outputs.

Every bench prints its reproduction table and appends it to
``reports/`` so EXPERIMENTS.md can reference concrete numbers.
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterable

from repro.telemetry.provenance import RunManifest, collect_manifest


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Iterable[dict], title: str = "") -> str:
    """Render a list of homogeneous dicts as an aligned text table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(no data)\n"
    cols = list(rows[0].keys())
    table = [[_fmt(r.get(c)) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in table)) for i, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in table:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def save_report(name: str, text: str, directory: str = "reports") -> str:
    """Write a report file (created under the repo root by default)."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text)
    return path


def save_json_report(
    name: str,
    payload: dict | list,
    directory: str = "reports",
    manifest: RunManifest | None = None,
) -> str:
    """Write ``reports/<name>.json`` stamped with a provenance manifest.

    ``payload`` is the report body (table rows or any JSON-serializable
    document); the manifest (collected now when not supplied) records
    the config hash, seed, git state and package versions that produced
    it, so saved numbers stay traceable to the tree state behind them.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.json")
    doc = {
        "name": name,
        "manifest": (manifest or collect_manifest()).to_dict(),
        "data": payload,
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
