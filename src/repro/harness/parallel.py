"""Process-pool execution engine with checkpoint/resume for experiment sweeps.

Every paper figure is a cartesian sweep of :func:`~repro.harness.runner.run_sim`
points; this module fans those points out across worker processes while
keeping three hard guarantees:

* **Determinism.**  Points are keyed by their full configuration
  (:func:`config_key`) and rows are assembled in submission order with
  the exact same float operations as the serial path
  (:func:`repro.harness.sweep.assemble_row`), so ``jobs=N`` output is
  byte-identical to ``jobs=0``.
* **Durability.**  Each completed point is appended to a JSONL
  checkpoint shard (:class:`CheckpointShard`, under ``reports/`` by
  default).  A killed or re-run sweep with ``resume=True`` re-executes
  only the missing points; the shard header carries a configuration
  signature so a stale shard cannot silently poison a different sweep.
* **Degradation, not death.**  A failing point is retried with bounded
  exponential backoff (a per-round sleep capped at
  :data:`BACKOFF_CAP_S`) and a per-point wait timeout; a point that
  exhausts its retries is *skipped* and reported (``EngineRun.skipped``)
  instead of aborting the sweep, unless ``strict=True``.

Progress flows over the telemetry bus as ``harness.point`` events
(status ``done``/``cached``/``retry``/``stalled``/``skipped``), which
``repro timeline`` renders and the Chrome-trace exporter lays out as
per-worker point tracks.  Worker processes populate their own
``run_sim`` memo caches: the pool initializer broadcasts the
(mix, scale, profiled) tuples of the sweep so each worker profiles its
programs once instead of once per point.

Pool runs are additionally *observable as a fleet* (see
``docs/observability.md``): the initializer wires each worker's
ambient bus to a :class:`~repro.telemetry.relay.WorkerRelay` and a
:class:`~repro.harness.health.HeartbeatEmitter`, the parent pumps the
shared relay queue from its wait loop (re-publishing worker events
with slot/pid attribution and folding heartbeats into per-worker
gauges), a worker silent beyond the stall threshold yields a
**stalled** disposition distinct from a timeout, and the engine
serves/persists a Prometheus + JSON status view of all of it
(:mod:`repro.telemetry.export`).

Wall-clock reads below time harness work (point spans, backoff, wait
deadlines) and never feed simulated results.
"""
# lint: disable-file=determinism

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import time
from collections.abc import Callable, Mapping, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any

from repro.harness import replication as replication_mod
from repro.harness import sweep as sweep_mod
from repro.harness.health import HealthMonitor, HeartbeatEmitter, MonitorConfig
from repro.harness.runner import (
    BenchScale,
    get_programs,
    run_sim,
    set_ambient_bus,
)
from repro.telemetry.bus import EventBus
from repro.telemetry.export import MetricsServer, status_path_for, write_status
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.relay import RelayDrain, WorkerRelay
from repro.telemetry.runlog import get_run_logger, setup_run_logging
from repro.telemetry.topics import TOPIC_HARNESS_POINT

#: Checkpoint shard format version (header field ``version``).
CHECKPOINT_VERSION = 1

#: Default directory for auto-named checkpoint shards.
DEFAULT_REPORTS_DIR = "reports"

#: Upper bound on one retry-round backoff sleep.
BACKOFF_CAP_S = 4.0

#: Env var for fault injection in workers — used by the failure-path
#: tests and for rehearsing degraded runs.  Formats:
#: ``raise:<label-substring>`` (raise in the worker),
#: ``exit:<label-substring>`` (die instantly),
#: ``sleep:<seconds>:<label-substring>`` (hang silently: heartbeats
#: stop, the stall detector fires), and
#: ``die:<seconds>:<label-substring>`` (die mid-point, after the start
#: heartbeat went out).
FAULT_ENV = "REPRO_PARALLEL_FAULT"

#: Poll cadence of the monitored pool wait loop: each tick pumps the
#: relay queue, refreshes the status document, and checks for stalls.
POLL_S = 0.05


# ----------------------------------------------------------------------
# Task model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Task:
    """One unit of work: a simulation point or a whole figure suite."""

    index: int
    key: str
    label: str
    kind: str  # "sim" | "figure"
    payload: tuple[Any, ...]


@dataclass
class PointReport:
    """Outcome of one task after execution/resume."""

    index: int
    key: str
    label: str
    status: str  # "done" | "cached" | "skipped"
    attempts: int = 0
    elapsed_ms: float = 0.0
    error: str | None = None


@dataclass
class EngineRun:
    """Raw engine outcome: values by key plus per-point reports."""

    values: dict[str, Any] = field(default_factory=dict)
    reports: list[PointReport] = field(default_factory=list)
    checkpoint_path: str | None = None
    executed: int = 0
    cached: int = 0
    #: Where the live status document was written (monitored runs only).
    status_path: str | None = None
    #: Final metrics snapshot (relay counters, worker gauges) of a
    #: monitored run — the programmatic twin of ``GET /metrics``.
    telemetry: dict[str, Any] = field(default_factory=dict)

    @property
    def skipped(self) -> list[PointReport]:
        return [r for r in self.reports if r.status == "skipped"]


def _canon(obj: Any) -> Any:
    """JSON-safe canonical form used for keys and signatures."""
    if isinstance(obj, BenchScale):
        return {"BenchScale": _canon(dataclasses.asdict(obj))}
    if isinstance(obj, Mapping):
        return {str(k): _canon(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canon(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    return repr(obj)


def config_key(mix_name: str, scale: BenchScale, kwargs: Mapping) -> str:
    """Canonical string key of one ``run_sim`` configuration."""
    return json.dumps(
        {"mix": mix_name, "scale": _canon(scale), "kwargs": _canon(dict(kwargs))},
        sort_keys=True,
        separators=(",", ":"),
    )


def signature_of(doc: Mapping[str, Any]) -> str:
    """Stable sha256 signature of a sweep/figures specification."""
    return hashlib.sha256(
        json.dumps(_canon(doc), sort_keys=True).encode()
    ).hexdigest()


def default_checkpoint_path(
    kind: str, signature: str, directory: str = DEFAULT_REPORTS_DIR
) -> str:
    """``reports/<kind>-<sig12>.jsonl`` — the auto shard location."""
    return os.path.join(directory, f"{kind}-{signature[:12]}.jsonl")


# ----------------------------------------------------------------------
# Checkpoint shard
# ----------------------------------------------------------------------
class CheckpointShard:
    """Append-only JSONL shard of completed points.

    Line 1 is a header object ``{"_checkpoint": {...}}`` carrying the
    format version and the sweep signature; each further line is one
    point record.  Only ``status == "done"`` records count as completed
    on resume; ``skipped`` records are kept for the audit trail but are
    re-executed by a resumed run.  A torn trailing line (a writer killed
    mid-append) is ignored on load.
    """

    def __init__(self, path: str, signature: str, kind: str):
        self.path = path
        self.signature = signature
        self.kind = kind
        self._fh: Any = None

    # -- reading -------------------------------------------------------
    @staticmethod
    def load(path: str) -> tuple[dict | None, dict[str, dict]]:
        """Parse a shard: ``(header-or-None, done-records-by-key)``."""
        header: dict | None = None
        records: dict[str, dict] = {}
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail line from a killed writer
                if isinstance(obj, dict) and "_checkpoint" in obj:
                    header = obj["_checkpoint"]
                    continue
                if (
                    isinstance(obj, dict)
                    and obj.get("status") == "done"
                    and isinstance(obj.get("key"), str)
                ):
                    records[obj["key"]] = obj
        return header, records

    def resume(self) -> dict[str, dict]:
        """Completed records when the shard matches this sweep.

        Returns ``{}`` when the shard does not exist yet; raises
        :class:`ValueError` when it exists but was written by a
        different configuration (wrong signature or format version).
        """
        if not os.path.exists(self.path):
            return {}
        header, records = self.load(self.path)
        if header is None:
            raise ValueError(
                f"checkpoint {self.path!r} has no readable header; delete it "
                f"or point --checkpoint elsewhere"
            )
        if header.get("version") != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint {self.path!r} has format version "
                f"{header.get('version')!r}, expected {CHECKPOINT_VERSION}"
            )
        if header.get("signature") != self.signature:
            raise ValueError(
                f"checkpoint {self.path!r} belongs to a different sweep "
                f"configuration (signature {str(header.get('signature'))[:12]}… "
                f"!= {self.signature[:12]}…); delete it or pass a different "
                f"--checkpoint path"
            )
        return records

    # -- writing -------------------------------------------------------
    def open(self, *, append: bool) -> None:
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        torn_tail = False
        if append and os.path.exists(self.path):
            # A writer killed mid-append can leave a final line with no
            # newline; appending onto it would corrupt the next record.
            with open(self.path, "rb") as existing:
                existing.seek(0, os.SEEK_END)
                size = existing.tell()
                if size:
                    existing.seek(size - 1)
                    torn_tail = existing.read(1) != b"\n"
        self._fh = open(self.path, "a" if append else "w")
        if torn_tail:
            self._fh.write("\n")
        if not append:
            self._write(
                {
                    "_checkpoint": {
                        "version": CHECKPOINT_VERSION,
                        "kind": self.kind,
                        "signature": self.signature,
                    }
                }
            )

    def append(self, record: Mapping[str, Any]) -> None:
        if self._fh is not None:
            self._write(record)

    def _write(self, obj: Mapping[str, Any]) -> None:
        self._fh.write(json.dumps(obj, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _inject_fault(label: str) -> None:
    spec = os.environ.get(FAULT_ENV)
    if not spec:
        return
    mode, _, rest = spec.partition(":")
    seconds = 0.0
    if mode in ("sleep", "die"):
        seconds_text, _, needle = rest.partition(":")
        seconds = float(seconds_text)
    else:
        needle = rest
    if needle and needle not in label:
        return
    if mode == "raise":
        raise RuntimeError(f"injected fault for point {label!r}")
    if mode == "exit":
        os._exit(17)
    if mode == "sleep":
        time.sleep(seconds)
    if mode == "die":
        time.sleep(seconds)
        os._exit(17)


@dataclass
class _WorkerObs:
    """Per-worker observability wiring installed by ``_init_worker``."""

    bus: EventBus
    relay: WorkerRelay
    heartbeat: HeartbeatEmitter


#: This worker's observability bundle (None outside monitored pools).
_WORKER_OBS: _WorkerObs | None = None


def _init_worker(warm: tuple, obs_spec: tuple | None = None) -> None:
    """Pool initializer: memo caches plus (optionally) observability.

    ``warm`` broadcasts the sweep's (mix, scale, profiled) tuples so
    each worker generates and profiles its programs once up front; the
    parent's caches are useless to a spawned child, and even a forked
    child re-profiles nothing this way.

    ``obs_spec`` carries the relay queue and monitoring knobs.  The
    queue can only reach a child through the pool initializer's
    ``initargs`` (multiprocessing queues refuse to ride ``submit()``
    arguments), which is why all of this lives here: the worker builds
    an ambient :class:`EventBus`, subscribes a :class:`WorkerRelay` and
    a :class:`HeartbeatEmitter`, and installs the bus so every
    ``run_sim`` pipeline the worker executes publishes onto it.
    """
    global _WORKER_OBS
    for mix_name, scale, profiled in warm:
        get_programs(mix_name, scale, profiled)
    if obs_spec is None:
        return
    queue, topics, batch_size, heartbeat_s, run_id, config_hash, log_path = obs_spec
    bus = EventBus()
    relay = WorkerRelay(queue, batch_size=batch_size)
    relay.attach(bus, tuple(topics))
    heartbeat = HeartbeatEmitter(relay, interval_s=heartbeat_s)
    heartbeat.attach(bus)
    set_ambient_bus(bus)
    # Deliberate per-process worker state, installed once per pool child.
    _WORKER_OBS = _WorkerObs(bus, relay, heartbeat)  # lint: disable=fork-safety
    if log_path:
        setup_run_logging(run_id, config_hash, path=log_path)
        get_run_logger("worker").info("worker online", extra={"pid": os.getpid()})


def _figure_suite(name: str) -> Callable[[BenchScale], list[dict]]:
    from repro.harness.experiments import SUITES

    try:
        return SUITES[name][0]
    except KeyError:
        raise KeyError(
            f"unknown figure suite {name!r}; known: {sorted(SUITES)}"
        ) from None


def _execute_task(task: Task) -> tuple[Any, float, float, int]:
    """Run one task; returns ``(value, start_ts, end_ts, worker_pid)``.

    The start heartbeat goes out before anything else (including fault
    injection) so the parent can attribute a worker death or hang to
    the point it was holding; the finally block marks the worker idle
    and flushes the relay whether the task succeeded or raised.
    """
    obs = _WORKER_OBS
    if obs is not None:
        obs.heartbeat.point_started(task.key)
    try:
        _inject_fault(task.label)
        start = time.time()
        if task.kind == "sim":
            mix_name, scale, kw_items = task.payload
            value: Any = run_sim(mix_name, scale, **dict(kw_items))
        elif task.kind == "figure":
            name, scale = task.payload
            value = _figure_suite(name)(scale)
        else:
            raise KeyError(f"unknown task kind {task.kind!r}")
        return value, start, time.time(), os.getpid()
    finally:
        if obs is not None:
            obs.heartbeat.point_finished()


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
#: ``harness.point`` payload fields → keys of a point's reduced metric
#: dict.  Sweep/replicate points reduce to ``{metric: float}`` dicts;
#: when one carries an IQ or ROB AVF the progress stream surfaces it so
#: a live sweep shows vulnerability alongside throughput.  A new metric
#: rides along by adding a (field, metric-key) pair here *and* the
#: field to ``TOPIC_HARNESS_POINT`` in ``repro.telemetry.topics``.
POINT_METRIC_FIELDS: dict[str, str] = {
    "avf": "iq_avf",
    "rob_avf": "rob_avf",
}


def _point_metrics(value: Any) -> dict[str, float | None]:
    """Extract the surfaced metric fields from a reduced point value."""
    out: dict[str, float | None] = dict.fromkeys(POINT_METRIC_FIELDS)
    if isinstance(value, Mapping):
        for field_name, metric in POINT_METRIC_FIELDS.items():
            v = value.get(metric)
            if isinstance(v, (int, float)) and v == v:  # NaN-safe
                out[field_name] = float(v)
    return out


class _PointEmitter:
    """Telemetry + report bookkeeping shared by the inline/pool paths."""

    def __init__(self, bus: EventBus | None, t0: float):
        self.bus = bus
        self.t0 = t0
        self._workers: dict[int, int] = {}  # pid -> compact slot
        #: Status tallies (kept even without a bus; status docs read them).
        self.counts: dict[str, int] = {}

    def worker_slot(self, pid: int) -> int:
        return self._workers.setdefault(pid, len(self._workers))

    def emit(
        self,
        task: Task,
        status: str,
        *,
        attempt: int,
        worker: int = -1,
        start_ms: float | None = None,
        elapsed_ms: float = 0.0,
        metrics: Mapping[str, float | None] | None = None,
    ) -> None:
        self.counts[status] = self.counts.get(status, 0) + 1
        if self.bus is None:
            return
        point = metrics if metrics is not None else _point_metrics(None)
        now_ms = (time.time() - self.t0) * 1000.0
        if start_ms is None:
            start_ms = now_ms
        self.bus.cycle = max(int(now_ms), 0)
        self.bus.emit(
            TOPIC_HARNESS_POINT,
            index=task.index,
            label=task.label,
            status=status,
            start_ms=float(start_ms),
            elapsed_ms=float(elapsed_ms),
            attempt=attempt,
            worker=worker,
            avf=point.get("avf"),
            rob_avf=point.get("rob_avf"),
        )


class _Stalled(Exception):
    """A worker went heartbeat-silent (or died) while holding a point."""

    def __init__(self, message: str, worker: int = -1):
        super().__init__(message)
        self.worker = worker


@dataclass
class _Fleet:
    """Parent-side observability bundle for one monitored pool run."""

    cfg: MonitorConfig
    t0: float
    queue: Any
    drain: RelayDrain
    health: HealthMonitor
    obs_spec: tuple
    write_status: Callable[[], None]


def _make_fleet(
    cfg: MonitorConfig,
    *,
    metrics: MetricsRegistry,
    health: HealthMonitor,
    bus: EventBus | None,
    emitter: "_PointEmitter",
    t0: float,
    run_id: str,
    signature: str,
    write_status_cb: Callable[[], None],
) -> _Fleet:
    """Build the relay queue + drain for one pool run.

    The queue comes from the default multiprocessing context (the same
    one ``ProcessPoolExecutor`` uses) and reaches workers through the
    pool initializer's initargs.
    """
    queue = multiprocessing.get_context().Queue(cfg.queue_size)
    drain = RelayDrain(
        queue,
        bus if bus is not None else EventBus(),
        worker_slot=emitter.worker_slot,
        t0=t0,
        metrics=metrics,
        on_health=health.on_health,
    )
    obs_spec = (
        queue,
        tuple(cfg.relay_topics),
        cfg.batch_size,
        cfg.heartbeat_s,
        run_id,
        signature,
        cfg.log_path,
    )
    return _Fleet(cfg, t0, queue, drain, health, obs_spec, write_status_cb)


def execute_tasks(
    tasks: Sequence[Task],
    *,
    reduce: Callable[[Task, Any], Any],
    jobs: int = 0,
    checkpoint: str | bool | None = None,
    resume: bool = False,
    signature_doc: Mapping[str, Any] | None = None,
    kind: str = "sweep",
    timeout: float | None = None,
    retries: int = 2,
    backoff: float = 0.25,
    strict: bool = False,
    bus: EventBus | None = None,
    warm: Sequence[tuple[str, BenchScale, bool]] = (),
    monitor: "MonitorConfig | bool | None" = None,
) -> EngineRun:
    """Execute ``tasks`` (deduplicated by caller), merging deterministically.

    ``reduce(task, raw)`` converts a worker's raw return value into the
    JSON-safe value stored in the checkpoint and in ``EngineRun.values``
    (for ``"sim"`` tasks: the extracted metric dict).  ``jobs <= 1``
    runs inline in this process (``timeout`` then bounds nothing —
    there is no one to interrupt a running point); ``jobs >= 2`` fans
    out over a :class:`~concurrent.futures.ProcessPoolExecutor`.

    ``checkpoint`` may be a path, ``True`` (auto path under
    ``reports/``), or ``None``/``False`` to disable checkpointing.

    ``monitor`` controls fleet observability, which applies only to
    pool runs (``jobs >= 2``): ``None``/``True`` turn it on with
    defaults, ``False`` turns it off, and a :class:`MonitorConfig`
    customizes it (relay topics, heartbeat cadence, stall threshold,
    ``--serve`` endpoint, status/log paths).
    """
    if jobs < 0:
        raise ValueError("jobs must be non-negative")
    if timeout is not None and timeout <= 0:
        raise ValueError("timeout must be positive when set")
    if retries < 0:
        raise ValueError("retries must be non-negative")
    keys = [t.key for t in tasks]
    if len(set(keys)) != len(keys):
        raise ValueError("task keys must be unique (dedupe before execute)")

    t0 = time.time()
    emitter = _PointEmitter(bus, t0)
    signature = signature_of(signature_doc or {"keys": keys})
    run_id = signature[:12]
    run = EngineRun()

    cfg: MonitorConfig | None = None
    if jobs >= 2 and monitor is not False:
        cfg = monitor if isinstance(monitor, MonitorConfig) else MonitorConfig()
    if cfg is not None and cfg.log_path:
        setup_run_logging(run_id, signature, path=cfg.log_path)
    log = get_run_logger("engine")

    shard: CheckpointShard | None = None
    completed: dict[str, dict] = {}
    if checkpoint:
        path = (
            default_checkpoint_path(kind, signature)
            if checkpoint is True
            else str(checkpoint)
        )
        shard = CheckpointShard(path, signature, kind)
        run.checkpoint_path = path
        if resume:
            completed = shard.resume()
        shard.open(append=bool(completed))

    metrics_registry = MetricsRegistry()
    health = HealthMonitor(
        metrics=metrics_registry,
        bus=bus,
        stall_after_s=cfg.stall_after_s if cfg is not None else 5.0,
    )
    label_by_key = {task.key: task.label for task in tasks}
    status_path: str | None = None
    if cfg is not None:
        status_path = cfg.status_path or (
            status_path_for(run.checkpoint_path) if run.checkpoint_path else None
        )
    run.status_path = status_path
    last_status_write = [0.0]

    def _status_doc(state: str = "running") -> dict[str, Any]:
        now = time.time()
        workers = health.to_doc((now - t0) * 1000.0)
        for row in workers:
            if row.get("point"):
                row["point"] = label_by_key.get(row["point"], row["point"])
        return {
            "schema": 1,
            "state": state,
            "kind": kind,
            "run_id": run_id,
            "config_hash": signature,
            "jobs": jobs,
            "started": t0,
            "updated": now,
            "points": {"total": len(tasks), **emitter.counts},
            "workers": workers,
            "metrics": metrics_registry.snapshot(),
            "checkpoint": run.checkpoint_path,
        }

    def _write_status_now(force: bool = False, state: str = "running") -> None:
        if status_path is None or cfg is None:
            return
        now = time.time()
        if not force and now - last_status_write[0] < cfg.status_write_s:
            return
        last_status_write[0] = now
        write_status(status_path, _status_doc(state))

    fleet: _Fleet | None = None
    server: MetricsServer | None = None
    try:
        if cfg is not None:
            fleet = _make_fleet(
                cfg,
                metrics=metrics_registry,
                health=health,
                bus=bus,
                emitter=emitter,
                t0=t0,
                run_id=run_id,
                signature=signature,
                write_status_cb=_write_status_now,
            )
            if bus is not None:
                health.attach(bus)
            if cfg.serve is not None:
                host, port = cfg.serve
                server = MetricsServer(
                    metrics_registry, _status_doc, host=host, port=port
                ).start()
                log.info(
                    "serving /metrics and /status",
                    extra={"host": server.host, "port": server.port},
                )
            log.info(
                "run starting",
                extra={"kind": kind, "jobs": jobs, "points": len(tasks)},
            )
            _write_status_now(force=True)

        todo: list[Task] = []
        for task in tasks:
            rec = completed.get(task.key)
            if rec is not None:
                run.values[task.key] = rec.get("value")
                run.cached += 1
                run.reports.append(
                    PointReport(task.index, task.key, task.label, "cached")
                )
                emitter.emit(
                    task, "cached", attempt=0,
                    metrics=_point_metrics(rec.get("value")),
                )
            else:
                todo.append(task)

        def _complete(task: Task, attempt: int, raw, start_ts, end_ts, pid) -> None:
            value = reduce(task, raw)
            start_ms = max((start_ts - t0) * 1000.0, 0.0)
            elapsed_ms = max((end_ts - start_ts) * 1000.0, 0.0)
            worker = emitter.worker_slot(pid)
            run.values[task.key] = value
            run.executed += 1
            run.reports.append(
                PointReport(
                    task.index, task.key, task.label, "done",
                    attempts=attempt, elapsed_ms=elapsed_ms,
                )
            )
            if shard is not None:
                shard.append(
                    {
                        "key": task.key,
                        "index": task.index,
                        "label": task.label,
                        "status": "done",
                        "value": value,
                        "elapsed_ms": elapsed_ms,
                        "attempt": attempt,
                        "worker": worker,
                    }
                )
            emitter.emit(
                task, "done", attempt=attempt, worker=worker,
                start_ms=start_ms, elapsed_ms=elapsed_ms,
                metrics=_point_metrics(value),
            )
            _write_status_now(force=True)

        def _skip(task: Task, attempt: int, error: str) -> None:
            run.reports.append(
                PointReport(
                    task.index, task.key, task.label, "skipped",
                    attempts=attempt, error=error,
                )
            )
            if shard is not None:
                shard.append(
                    {
                        "key": task.key,
                        "index": task.index,
                        "label": task.label,
                        "status": "skipped",
                        "error": error,
                        "attempt": attempt,
                    }
                )
            log.warning(
                "point skipped", extra={"label": task.label, "error": error}
            )
            emitter.emit(task, "skipped", attempt=attempt)
            _write_status_now(force=True)

        if todo:
            if jobs <= 1:
                _run_inline(todo, _complete, _skip, emitter, retries, backoff)
            else:
                _run_pool(
                    todo, _complete, _skip, emitter,
                    jobs=jobs, timeout=timeout, retries=retries,
                    backoff=backoff, warm=tuple(warm), fleet=fleet,
                )
    finally:
        if fleet is not None:
            fleet.drain.pump()
        if shard is not None:
            shard.close()
        if server is not None:
            server.close()
        if cfg is not None:
            run.telemetry = metrics_registry.snapshot()
            _write_status_now(force=True, state="finished")
            log.info(
                "run finished",
                extra={
                    "executed": run.executed,
                    "cached": run.cached,
                    "relay_dropped": int(fleet.drain.dropped) if fleet else 0,
                },
            )

    run.reports.sort(key=lambda r: r.index)
    if strict and run.skipped:
        failed = ", ".join(f"{r.label} ({r.error})" for r in run.skipped)
        raise RuntimeError(
            f"{len(run.skipped)} point(s) failed after {retries} retries: {failed}"
        )
    return run


def _backoff_sleep(backoff: float, round_index: int) -> None:
    if backoff > 0:
        time.sleep(min(backoff * (2 ** round_index), BACKOFF_CAP_S))


def _run_inline(todo, complete, skip, emitter: _PointEmitter, retries, backoff) -> None:
    for task in todo:
        attempt = 0
        while True:
            attempt += 1
            try:
                raw, start_ts, end_ts, pid = _execute_task(task)
            except Exception as exc:  # noqa: BLE001 - degraded-run boundary
                if attempt <= retries:
                    emitter.emit(task, "retry", attempt=attempt)
                    _backoff_sleep(backoff, attempt - 1)
                    continue
                skip(task, attempt, f"{exc.__class__.__name__}: {exc}")
                break
            complete(task, attempt, raw, start_ts, end_ts, pid)
            break


def _await_result(fut, task: Task, timeout, fleet: _Fleet | None):
    """Wait for one future, servicing the fleet while it runs.

    Without a fleet this is exactly ``fut.result(timeout=timeout)``.
    With one, the wait becomes a poll loop: each :data:`POLL_S` tick
    pumps the relay queue (re-publishing worker events and folding
    heartbeats), refreshes the throttled status document, and asks the
    health monitor whether the worker holding *this* point has gone
    heartbeat-silent — raising :class:`_Stalled` if so, which the
    caller treats as a retryable failure distinct from a timeout.
    Stall detection needs a start beat, so it covers started points;
    a point queued behind a hung sibling is bounded by ``timeout``.
    """
    if fleet is None:
        return fut.result(timeout=timeout)
    deadline = time.time() + timeout if timeout is not None else None
    while True:
        try:
            return fut.result(timeout=POLL_S)
        except _FutureTimeout:
            fleet.drain.pump()
            fleet.write_status()
            now = time.time()
            stall = fleet.health.stalled_worker(task.key, (now - fleet.t0) * 1000.0)
            if stall is not None:
                record, age_s = stall
                raise _Stalled(
                    f"stalled: no heartbeat for {age_s:.1f}s "
                    f"(worker w{record.worker}, pid {record.pid})",
                    worker=record.worker,
                ) from None
            if deadline is not None and now >= deadline:
                raise


def _run_pool(
    todo, complete, skip, emitter: _PointEmitter,
    *, jobs, timeout, retries, backoff, warm, fleet: _Fleet | None = None,
) -> None:
    pending: list[tuple[Task, int]] = [(task, 1) for task in todo]
    round_index = 0
    while pending:
        failures: list[tuple[Task, int, str]] = []
        dirty = False  # a timed-out or crashed worker may still be running
        if fleet is not None:
            # Forget last round's point attribution: a stale "running"
            # record from a dead pool must not stall a retried point.
            fleet.health.begin_round()
        pool = ProcessPoolExecutor(
            max_workers=min(jobs, len(pending)),
            initializer=_init_worker,
            initargs=(warm, fleet.obs_spec) if fleet is not None else (warm,),
        )
        try:
            futures = [
                (task, attempt, pool.submit(_execute_task, task))
                for task, attempt in pending
            ]
            for task, attempt, fut in futures:
                try:
                    raw, start_ts, end_ts, pid = _await_result(
                        fut, task, timeout, fleet
                    )
                except _FutureTimeout:
                    fut.cancel()
                    dirty = True
                    failures.append(
                        (task, attempt, f"timed out after {timeout:.1f}s")
                    )
                except _Stalled as exc:
                    fut.cancel()
                    dirty = True
                    emitter.emit(task, "stalled", attempt=attempt, worker=exc.worker)
                    failures.append((task, attempt, str(exc)))
                except BrokenProcessPool:
                    # The worker died (or a sibling's death broke the
                    # pool).  The attempt is charged to every affected
                    # point; innocents complete on the next round while
                    # a genuinely poisoned point exhausts its retries.
                    dirty = True
                    if fleet is not None:
                        fleet.drain.pump()  # the victim's last heartbeats
                    if fleet is not None and fleet.health.started(task.key):
                        # A worker sent the start beat for this point and
                        # then the pool broke: the death is attributable,
                        # i.e. a stall, not an anonymous casualty.
                        emitter.emit(task, "stalled", attempt=attempt)
                        failures.append(
                            (task, attempt, "stalled: worker process died mid-point")
                        )
                    else:
                        failures.append((task, attempt, "worker process died"))
                except Exception as exc:  # noqa: BLE001 - worker raised
                    failures.append(
                        (task, attempt, f"{exc.__class__.__name__}: {exc}")
                    )
                else:
                    complete(task, attempt, raw, start_ts, end_ts, pid)
        finally:
            pool.shutdown(wait=not dirty, cancel_futures=True)
        if fleet is not None:
            fleet.drain.pump()
        pending = []
        for task, attempt, error in failures:
            if attempt <= retries:
                emitter.emit(task, "retry", attempt=attempt)
                pending.append((task, attempt + 1))
            else:
                skip(task, attempt, error)
        if pending:
            _backoff_sleep(backoff, round_index)
            round_index += 1


# ----------------------------------------------------------------------
# Sweep / replicate / figures front-ends
# ----------------------------------------------------------------------
@dataclass
class SweepRun:
    """Rows plus execution audit of one (possibly parallel) sweep."""

    rows: list[dict]
    reports: list[PointReport]
    checkpoint_path: str | None
    executed: int
    cached: int
    #: Where the live status document was written (monitored runs only).
    status_path: str | None = None
    #: Final metrics snapshot of a monitored run (see EngineRun.telemetry).
    telemetry: dict[str, Any] = field(default_factory=dict)

    @property
    def skipped(self) -> list[PointReport]:
        return [r for r in self.reports if r.status == "skipped"]


def point_label(kwargs: Mapping) -> str:
    """Compact human label of one grid point (axis order preserved)."""
    if not kwargs:
        return "default"
    return ",".join(f"{k}={v}" for k, v in kwargs.items())


def parallel_sweep(
    mix_name: str,
    scale: BenchScale,
    axes: Mapping[str, Sequence],
    metrics: Mapping[str, Callable] | None = None,
    normalize_to: Mapping | None = None,
    *,
    jobs: int = 0,
    checkpoint: str | bool | None = None,
    resume: bool = False,
    timeout: float | None = None,
    retries: int = 2,
    backoff: float = 0.25,
    strict: bool = False,
    bus: EventBus | None = None,
    monitor: MonitorConfig | bool | None = None,
    **fixed,
) -> SweepRun:
    """:func:`repro.harness.sweep.sweep` semantics over a process pool.

    Rows are byte-identical to the serial path for the points that
    completed; skipped points (after ``retries`` rounds) are omitted
    from ``rows`` and listed in ``SweepRun.skipped``.  Metric lambdas
    stay in this process: workers return the full
    :class:`~repro.core.pipeline.SimulationResult` and extraction +
    normalization happen at merge time, so any extractor works under
    any start method.
    """
    metrics = dict(metrics or sweep_mod.DEFAULT_METRICS)
    points = []  # (kwargs, merged, key) in grid order
    for kwargs in sweep_mod.grid_points(axes):
        merged = {**fixed, **kwargs}
        points.append((kwargs, merged, config_key(mix_name, scale, merged)))

    tasks: dict[str, Task] = {}

    def _add(key: str, label: str, merged: Mapping) -> None:
        if key not in tasks:
            tasks[key] = Task(
                index=len(tasks), key=key, label=label, kind="sim",
                payload=(mix_name, scale, tuple(sorted(merged.items()))),
            )

    base_key = None
    if normalize_to is not None:
        base_merged = {**fixed, **normalize_to}
        base_key = config_key(mix_name, scale, base_merged)
        _add(base_key, f"baseline[{point_label(dict(normalize_to))}]", base_merged)
    for kwargs, merged, key in points:
        _add(key, point_label(kwargs), merged)

    profiled_variants = sorted({bool(m.get("profiled", True)) for _, m, _ in points})
    run = execute_tasks(
        list(tasks.values()),
        reduce=lambda task, result: sweep_mod.extract_metrics(metrics, result),
        jobs=jobs,
        checkpoint=checkpoint,
        resume=resume,
        signature_doc={
            "kind": "sweep",
            "mix": mix_name,
            "scale": scale,
            "axes": axes,
            "fixed": fixed,
            "metrics": sorted(metrics),
            "normalize_to": normalize_to,
        },
        kind="sweep",
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        strict=strict,
        bus=bus,
        warm=tuple((mix_name, scale, p) for p in profiled_variants),
        monitor=monitor,
    )

    baseline_raw = None
    if base_key is not None:
        baseline_raw = run.values.get(base_key)
        if baseline_raw is None:
            # Degraded further: the baseline itself was skipped, so every
            # normalized value is NaN (normalize_value never warns on a
            # NaN denominator, so warn once here).
            import warnings

            warnings.warn(
                "sweep baseline point was skipped; all normalized values are NaN",
                RuntimeWarning,
                stacklevel=2,
            )
            baseline_raw = {name: float("nan") for name in metrics}
    rows = []
    for kwargs, _merged, key in points:
        raw = run.values.get(key)
        if raw is None:
            continue  # skipped point; reported via run.reports
        rows.append(
            sweep_mod.assemble_row(mix_name, kwargs, list(metrics), raw, baseline_raw)
        )
    return SweepRun(
        rows=rows,
        reports=run.reports,
        checkpoint_path=run.checkpoint_path,
        executed=run.executed,
        cached=run.cached,
        status_path=run.status_path,
        telemetry=run.telemetry,
    )


def parallel_replicate(
    mix_name: str,
    scale: BenchScale,
    seeds: Sequence[int],
    metrics: Mapping[str, Callable] | None = None,
    *,
    jobs: int = 0,
    checkpoint: str | bool | None = None,
    resume: bool = False,
    timeout: float | None = None,
    retries: int = 2,
    backoff: float = 0.25,
    strict: bool = True,
    bus: EventBus | None = None,
    monitor: MonitorConfig | bool | None = None,
    **run_kwargs,
) -> dict[str, "replication_mod.Replicated"]:
    """:func:`repro.harness.replication.replicate` over a process pool.

    ``strict`` defaults to True here: a silently missing seed would
    bias the mean/stddev aggregates, which is worse than failing.
    """
    if not seeds:
        raise ValueError("at least one seed is required")
    metrics = dict(metrics or replication_mod.DEFAULT_METRICS)
    seeded_scales = [dataclasses.replace(scale, seed=seed) for seed in seeds]
    tasks = []
    keys = []
    for i, seeded in enumerate(seeded_scales):
        key = config_key(mix_name, seeded, run_kwargs)
        keys.append(key)
        tasks.append(
            Task(
                index=i, key=key, label=f"seed={seeded.seed}", kind="sim",
                payload=(mix_name, seeded, tuple(sorted(run_kwargs.items()))),
            )
        )
    run = execute_tasks(
        tasks,
        reduce=lambda task, result: sweep_mod.extract_metrics(metrics, result),
        jobs=jobs,
        checkpoint=checkpoint,
        resume=resume,
        signature_doc={
            "kind": "replicate",
            "mix": mix_name,
            "scale": scale,
            "seeds": list(seeds),
            "metrics": sorted(metrics),
            "kwargs": run_kwargs,
        },
        kind="replicate",
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        strict=strict,
        bus=bus,
        warm=tuple(
            (mix_name, seeded, bool(run_kwargs.get("profiled", True)))
            for seeded in seeded_scales
        ),
        monitor=monitor,
    )
    samples: dict[str, list[float]] = {name: [] for name in metrics}
    for key in keys:
        raw = run.values.get(key)
        if raw is None:
            continue  # skipped seed (strict=False); aggregates shrink
        for name in metrics:
            samples[name].append(raw[name])
    return {
        name: replication_mod.Replicated(metric=name, values=tuple(vals))
        for name, vals in samples.items()
    }


@dataclass
class FiguresRun:
    """Per-figure row payloads plus execution audit."""

    results: dict[str, list[dict]]
    reports: list[PointReport]
    checkpoint_path: str | None
    executed: int
    cached: int

    @property
    def skipped(self) -> list[PointReport]:
        return [r for r in self.reports if r.status == "skipped"]


def parallel_figures(
    names: Sequence[str],
    scale: BenchScale,
    *,
    jobs: int = 0,
    checkpoint: str | bool | None = None,
    resume: bool = False,
    timeout: float | None = None,
    retries: int = 1,
    backoff: float = 0.25,
    strict: bool = False,
    bus: EventBus | None = None,
    monitor: MonitorConfig | bool | None = None,
) -> FiguresRun:
    """Run whole figure/table suites as pool tasks (one task per figure).

    Figures parallelize coarsely — each suite runs its own serial
    ``run_sim`` grid inside one worker — which is the right granularity
    for ``REPRO_FULL`` trajectories where several figures are wanted at
    once.
    """
    from repro.harness.experiments import SUITES

    unknown = sorted(set(names) - set(SUITES))
    if unknown:
        raise KeyError(f"unknown figure suite(s) {unknown}; known: {sorted(SUITES)}")
    if not names:
        raise ValueError("at least one figure suite is required")
    tasks = []
    keys = []
    for i, name in enumerate(names):
        key = json.dumps(
            {"kind": "figure", "name": name, "scale": _canon(scale)},
            sort_keys=True,
            separators=(",", ":"),
        )
        keys.append(key)
        tasks.append(
            Task(index=i, key=key, label=name, kind="figure", payload=(name, scale))
        )
    run = execute_tasks(
        tasks,
        reduce=lambda task, rows: rows,
        jobs=jobs,
        checkpoint=checkpoint,
        resume=resume,
        signature_doc={"kind": "figures", "names": list(names), "scale": scale},
        kind="figures",
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        strict=strict,
        bus=bus,
        warm=(),
        monitor=monitor,
    )
    results = {
        name: run.values[key]
        for name, key in zip(names, keys)
        if key in run.values
    }
    return FiguresRun(
        results=results,
        reports=run.reports,
        checkpoint_path=run.checkpoint_path,
        executed=run.executed,
        cached=run.cached,
    )


__all__ = [
    "BACKOFF_CAP_S",
    "CHECKPOINT_VERSION",
    "CheckpointShard",
    "EngineRun",
    "FiguresRun",
    "MonitorConfig",
    "POINT_METRIC_FIELDS",
    "PointReport",
    "SweepRun",
    "Task",
    "config_key",
    "default_checkpoint_path",
    "execute_tasks",
    "parallel_figures",
    "parallel_replicate",
    "parallel_sweep",
    "point_label",
    "signature_of",
]
