"""Terminal-friendly charts for reports and examples.

The bench harness is text-only (no matplotlib dependency), so figures
are rendered as ASCII: sparklines for series, horizontal bars for
categorical values, and strip charts for interval traces.
"""

from __future__ import annotations

from collections.abc import Sequence

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: float | None = None, hi: float | None = None) -> str:
    """One-line sparkline of a series (empty input → empty string)."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo = min(vals) if lo is None else lo
    hi = max(vals) if hi is None else hi
    span = hi - lo
    if span <= 0:
        return _SPARK_LEVELS[0] * len(vals)
    out = []
    for v in vals:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[min(max(idx, 0), len(_SPARK_LEVELS) - 1)])
    return "".join(out)


def hbar_chart(
    items: Sequence[tuple[str, float]],
    width: int = 40,
    fmt: str = "{:.3f}",
) -> str:
    """Horizontal bar chart: one ``label |#####| value`` row per item."""
    rows = list(items)
    if not rows:
        return "(no data)"
    peak = max(v for _, v in rows)
    label_w = max(len(label) for label, _ in rows)
    lines = []
    for label, v in rows:
        n = int(width * v / peak) if peak > 0 else 0
        lines.append(f"{label:<{label_w}} |{'#' * n:<{width}}| {fmt.format(v)}")
    return "\n".join(lines)


def strip_chart(
    values: Sequence[float],
    threshold: float | None = None,
    width: int = 40,
    max_rows: int = 60,
    marker: str = " <-- emergency",
) -> str:
    """Per-interval bars with an optional threshold marker (Figure 8
    style interval traces)."""
    vals = [float(v) for v in values][:max_rows]
    if not vals:
        return "(no intervals)"
    peak = max(max(vals), threshold or 0.0)
    if peak <= 0:
        peak = 1.0
    lines = []
    if threshold is not None:
        cut = int(width * threshold / peak)
        lines.append(f"target {threshold:.3f} at column {cut}")
    for i, v in enumerate(vals):
        n = int(width * v / peak)
        flag = marker if threshold is not None and v > threshold else ""
        lines.append(f"{i:4d} |{'#' * n:<{width}}| {v:.3f}{flag}")
    return "\n".join(lines)


def histogram_chart(
    probabilities: Sequence[float],
    max_bins: int = 40,
    width: int = 40,
) -> str:
    """Render a probability histogram (Figure 2 style)."""
    vals = [float(v) for v in probabilities][:max_bins]
    return hbar_chart([(str(i), v) for i, v in enumerate(vals)], width=width, fmt="{:.4f}")
