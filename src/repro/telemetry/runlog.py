"""Run-scoped structured logging: JSONL with correlation ids.

Every sweep/figure run gets one logical log stream under the
``repro.run`` logger.  Records are emitted as single-line JSON objects
carrying the run's correlation ids (``run_id`` — the truncated task
signature — and ``config_hash``), so a line from a pool worker, the
engine, and the CLI all join on the same keys, and a log aggregator
can follow one run across processes.

Workers append to the same JSONL file as the parent (``mode="a"``;
one-line records stay below the pipe/file atomicity threshold in
practice, and each line is self-describing, so interleaving is
harmless).  The pool initializer calls :func:`setup_run_logging` with
the path and ids it received through initargs.

Use :func:`get_run_logger` from engine code: it returns the shared
logger with a ``NullHandler`` attached, so logging is free when no run
configured it.

Timestamps are wall-clock observability, never simulated results.
"""
# lint: disable-file=determinism

from __future__ import annotations

import json
import logging
from typing import Any, TextIO

#: The shared logger name; children (``repro.run.engine`` etc.) inherit.
RUN_LOGGER_NAME = "repro.run"

#: LogRecord attributes that are plumbing, not user payload.
_RECORD_FIELDS = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonlFormatter(logging.Formatter):
    """One JSON object per line, with run correlation ids.

    Any ``extra={...}`` keys on a record are merged into the object, so
    call sites attach structure (``point=...``, ``worker=...``) instead
    of interpolating it into the message.
    """

    def __init__(self, run_id: str, config_hash: str) -> None:
        super().__init__()
        self.run_id = run_id
        self.config_hash = config_hash

    def format(self, record: logging.LogRecord) -> str:
        doc: dict[str, Any] = {
            "ts": round(record.created, 3),
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
            "run_id": self.run_id,
            "config_hash": self.config_hash,
        }
        for key, value in record.__dict__.items():
            if key not in _RECORD_FIELDS and not key.startswith("_"):
                doc[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            doc["exc"] = self.formatException(record.exc_info)
        return json.dumps(doc, default=str, sort_keys=True)


def get_run_logger(child: str = "") -> logging.Logger:
    """The run logger (or a child of it), safe to use unconfigured."""
    logger = logging.getLogger(RUN_LOGGER_NAME)
    if not any(isinstance(h, logging.NullHandler) for h in logger.handlers):
        logger.addHandler(logging.NullHandler())
    return logger.getChild(child) if child else logger


def setup_run_logging(
    run_id: str,
    config_hash: str,
    *,
    path: str | None = None,
    stream: TextIO | None = None,
    level: int = logging.INFO,
) -> logging.Logger:
    """(Re)configure the shared run logger for one run.

    ``path`` appends JSONL records to a file (what ``--log`` wires up,
    in both the parent and every pool worker); ``stream`` mirrors them
    to an open text stream.  Previous run handlers are replaced, so
    back-to-back runs in one process do not double-log.
    """
    logger = logging.getLogger(RUN_LOGGER_NAME)
    teardown_run_logging()
    logger.setLevel(level)
    logger.propagate = False
    formatter = JsonlFormatter(run_id, config_hash)
    if path is not None:
        file_handler = logging.FileHandler(path, mode="a", delay=True)
        file_handler.setFormatter(formatter)
        logger.addHandler(file_handler)
    if stream is not None:
        stream_handler = logging.StreamHandler(stream)
        stream_handler.setFormatter(formatter)
        logger.addHandler(stream_handler)
    if not logger.handlers:
        logger.addHandler(logging.NullHandler())
    return logger


def teardown_run_logging() -> None:
    """Detach (and close) every configured run-log handler."""
    logger = logging.getLogger(RUN_LOGGER_NAME)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
        if not isinstance(handler, logging.NullHandler):
            handler.close()
