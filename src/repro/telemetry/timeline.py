"""Decision/interval timeline recording and rendering.

``TimelineRecorder`` subscribes to the controller-decision topics plus
``interval.close`` and keeps an ordered list of
:class:`RecordedEvent`; the helpers below render the merged timeline
as text (optionally with an AVF strip chart from
:mod:`repro.harness.charts`) or JSON, and round-trip recordings
through JSONL files whose first line is the run's provenance manifest.

This is what ``repro timeline`` drives, and what makes DVM's slow-up /
rapid-down adaptation, the 10K-cycle IQL caps and the
``Tcache_miss``-triggered FLUSH switches inspectable instead of
vanishing into end-of-run averages.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.telemetry.bus import Event, EventBus, Subscription
from repro.telemetry.provenance import RunManifest
from repro.telemetry.topics import (
    DECISION_TOPICS,
    TOPIC_INTERVAL_CLOSE,
    Topic,
    get_topic,
)


@dataclass(frozen=True)
class RecordedEvent:
    """One bus event flattened for storage/rendering."""

    cycle: int
    stage: str
    topic: str
    payload: dict[str, Any]


class TimelineRecorder:
    """Collects decision + interval events from a bus.

    Use as a context manager around ``pipeline.run()``::

        recorder = TimelineRecorder(pipe.bus)
        with recorder:
            pipe.run()
        print(render_timeline(recorder.events))
    """

    def __init__(
        self,
        bus: EventBus,
        topics: Sequence[Topic] | None = None,
        limit: int = 200_000,
    ):
        if limit <= 0:
            raise ValueError("limit must be positive")
        self.bus = bus
        self.topics: tuple[Topic, ...] = tuple(
            topics if topics is not None else (TOPIC_INTERVAL_CLOSE, *DECISION_TOPICS)
        )
        self.limit = limit
        self.events: list[RecordedEvent] = []
        self.dropped = 0
        self._sub: Subscription | None = None

    # ------------------------------------------------------------------
    def _on_event(self, event: Event) -> None:
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        payload = dict(event.payload)
        if event.origin is not None:
            # Relayed from a pool worker: keep the attribution (worker
            # slot, pid, arrival ms) under underscore keys so renderers
            # and the Chrome-trace exporter can place the event on the
            # right worker track without a schema change per topic.
            payload["_worker"] = event.origin.worker
            payload["_pid"] = event.origin.pid
            payload["_ms"] = event.origin.ms
        self.events.append(
            RecordedEvent(event.cycle, event.stage, event.topic, payload)
        )

    def attach(self) -> "TimelineRecorder":
        if self._sub is None:
            self._sub = self.bus.subscribe(self.topics, self._on_event)
        return self

    def detach(self) -> None:
        if self._sub is not None:
            self._sub.close()
            self._sub = None

    def __enter__(self) -> "TimelineRecorder":
        return self.attach()

    def __exit__(self, *exc: object) -> None:
        self.detach()

    # ------------------------------------------------------------------
    def decision_kinds(self) -> dict[str, int]:
        """Counts per decision topic (interval samples excluded)."""
        counts: dict[str, int] = {}
        for ev in self.events:
            if ev.topic != TOPIC_INTERVAL_CLOSE.name:
                counts[ev.topic] = counts.get(ev.topic, 0) + 1
        return counts

    def to_jsonl(self, path: str, manifest: RunManifest | None = None) -> int:
        """Write ``{manifest}\\n{event}...`` JSONL; returns event count."""
        with open(path, "w") as fh:
            if manifest is not None:
                fh.write(json.dumps({"_manifest": manifest.to_dict()}) + "\n")
            for ev in self.events:
                fh.write(json.dumps(asdict(ev)) + "\n")
        return len(self.events)


def read_jsonl(path: str) -> tuple[RunManifest | None, list[RecordedEvent]]:
    """Load a recording; returns (manifest-or-None, events)."""
    manifest: RunManifest | None = None
    events: list[RecordedEvent] = []
    with open(path) as fh:
        for line in fh:
            if not line.strip():
                continue
            obj = json.loads(line)
            if "_manifest" in obj:
                manifest = RunManifest.from_dict(obj["_manifest"])
                continue
            events.append(
                RecordedEvent(
                    cycle=int(obj["cycle"]),
                    stage=str(obj.get("stage", "")),
                    topic=str(obj["topic"]),
                    payload=dict(obj.get("payload", {})),
                )
            )
    return manifest, events


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _fmt_payload(topic: str, p: Mapping[str, Any]) -> str:
    # Relayed events carry worker attribution under underscore keys.
    who = f"w{p['_worker']} " if "_worker" in p else ""
    if topic == "interval.close":
        return (
            f"{who}ipc={p['ipc']:.2f}  rql={p['avg_ready_queue_len']:.1f}  "
            f"wql={p['avg_waiting_queue_len']:.1f}  l2={p['l2_misses']}  "
            f"online_avf={p['online_avf_estimate']:.3f}  iql={p['iq_limit']}"
        )
    if topic == "dvm.ratio":
        return f"wq_ratio {p['old_ratio']:.2f} -> {p['new_ratio']:.2f} ({p['direction']})"
    if topic == "dvm.trigger":
        return f"armed ({p['reason']}, est={p['estimate']:.3f})"
    if topic == "dvm.restore":
        return f"restore dispatch for t{p['thread']} (fetch-queue ACE={p['ace_count']})"
    if topic == "iql.cap":
        return (
            f"IQL {p['old_limit']} -> {p['new_limit']} "
            f"(ipc={p['ipc']:.2f}, rql={p['avg_ready_queue_len']:.1f})"
        )
    if topic == "flush.switch":
        state = "enter" if p["enabled"] else "leave"
        return f"{state} FLUSH mode (l2_misses={p['l2_misses']} vs T={p['threshold']})"
    if topic == "fetch.flush":
        return f"flush t{p['thread']} after tag {p['after_tag']}"
    if topic == "harness.point":
        worker = f"w{p['worker']}" if p["worker"] >= 0 else "-"
        # p.get: recordings from before the avf/rob_avf fields lack them.
        vuln = ""
        avf = p.get("avf")
        if avf is not None:
            vuln += f", avf={avf:.3f}"
        rob_avf = p.get("rob_avf")
        if rob_avf is not None:
            vuln += f", rob={rob_avf:.3f}"
        return (
            f"point[{p['index']}] {p['label']} -> {p['status']} "
            f"(attempt={p['attempt']}, worker={worker}, {p['elapsed_ms']:.0f}ms{vuln})"
        )
    return "  ".join(f"{k}={v}" for k, v in sorted(p.items()))


def _coalesce(events: Iterable[RecordedEvent]) -> list[dict[str, Any]]:
    """Merge consecutive ``dvm.throttle`` events into one gating run.

    Throttling fires per thread per cycle while armed, so a single L2
    episode produces thousands of events; a run of them (any mix of
    threads, uninterrupted by other topics) collapses to one row that
    keeps the cycle span and the per-thread gate counts.
    """
    rows: list[dict[str, Any]] = []
    for ev in events:
        if ev.topic == "dvm.throttle" and rows and rows[-1]["topic"] == "dvm.throttle":
            run = rows[-1]
            run["last_cycle"] = ev.cycle
            run["count"] += 1
            threads: dict[str, int] = run["payload"].setdefault("threads", {})
            key = str(ev.payload.get("thread"))
            threads[key] = threads.get(key, 0) + 1
            continue
        payload = dict(ev.payload)
        if ev.topic == "dvm.throttle":
            payload["threads"] = {str(payload.get("thread")): 1}
        rows.append(
            {
                "cycle": ev.cycle,
                "last_cycle": ev.cycle,
                "topic": ev.topic,
                "stage": ev.stage,
                "payload": payload,
                "count": 1,
            }
        )
    return rows


def _label(row: Mapping[str, Any]) -> str:
    topic = row["topic"]
    if topic == "interval.close":
        return f"interval[{row['payload']['index']}]"
    return str(topic)


def timeline_rows(events: Sequence[RecordedEvent]) -> list[dict[str, Any]]:
    """Coalesced, render-ready rows (also the JSON payload)."""
    rows = _coalesce(events)
    for row in rows:
        if row["topic"] == "dvm.throttle":
            threads = row["payload"].get("threads", {})
            who = ",".join(f"t{t}" for t in sorted(threads))
            if row["count"] > 1:
                row["detail"] = (
                    f"dispatch gated for {who} x{row['count']} "
                    f"(cycles {row['cycle']}-{row['last_cycle']})"
                )
            else:
                row["detail"] = f"dispatch gated for {who} (L2 miss outstanding)"
        else:
            row["detail"] = _fmt_payload(row["topic"], row["payload"])
        row["label"] = _label(row)
    return rows


def render_timeline(
    events: Sequence[RecordedEvent],
    *,
    title: str = "decision timeline",
    chart: bool = False,
    max_rows: int | None = None,
) -> str:
    """Merged interval/decision timeline as aligned text."""
    rows = timeline_rows(events)
    shown = rows if max_rows is None else rows[:max_rows]
    lines = [title]
    n_decisions = sum(1 for r in rows if r["topic"] != "interval.close")
    n_intervals = sum(1 for r in rows if r["topic"] == "interval.close")
    lines.append(
        f"{len(events)} events -> {len(rows)} rows "
        f"({n_intervals} intervals, {n_decisions} decisions)"
    )
    if not rows:
        lines.append("(no events recorded)")
        return "\n".join(lines) + "\n"
    width = max(len(r["label"]) for r in shown)
    for row in shown:
        lines.append(f"{row['cycle']:>8}  {row['label']:<{width}}  {row['detail']}")
    if max_rows is not None and len(rows) > max_rows:
        lines.append(f"... ({len(rows) - max_rows} more rows)")
    if chart:
        avf = [
            r["payload"]["online_avf_estimate"]
            for r in rows
            if r["topic"] == "interval.close"
        ]
        if avf:
            from repro.harness.charts import sparkline

            lines.append(f"online AVF per interval: {sparkline(avf)}")
    return "\n".join(lines) + "\n"


def timeline_json(
    events: Sequence[RecordedEvent],
    manifest: RunManifest | None = None,
    extra: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """JSON document form of the merged timeline."""
    counts: dict[str, int] = {}
    for ev in events:
        counts[ev.topic] = counts.get(ev.topic, 0) + 1
    return {
        "manifest": manifest.to_dict() if manifest is not None else None,
        "topic_counts": dict(sorted(counts.items())),
        "rows": timeline_rows(events),
        **dict(extra or {}),
    }


def decision_topic_names() -> list[str]:
    """Dotted names of the registered decision topics."""
    return sorted(t.name for t in DECISION_TOPICS)


__all__ = [
    "RecordedEvent",
    "TimelineRecorder",
    "read_jsonl",
    "render_timeline",
    "timeline_json",
    "timeline_rows",
    "decision_topic_names",
    "get_topic",
]
