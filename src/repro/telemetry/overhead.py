"""Zero-subscriber telemetry overhead smoke check.

The event bus is designed so that a pipeline with telemetry enabled but
*no subscribers* pays only per-cycle stamping (a handful of attribute
stores plus one version compare) versus the bare ``telemetry=False``
loop.  This module measures that gap on a small workload and fails when
it exceeds a threshold (default 5%), so a hot-path regression in the
instrumentation is caught by CI instead of silently taxing every
experiment.

Run as a module::

    PYTHONPATH=src python -m repro.telemetry.overhead --max-overhead 0.05

Besides the pass/fail verdict, the measurement is appended as a
``telemetry-overhead`` entry to the ``BENCH_perf.json`` history (via
:mod:`repro.perf.history`), so the zero-subscriber overhead has a
recorded trajectory instead of vanishing into CI logs; ``--no-history``
skips the write.

Timing is wall-clock by necessity, so the determinism rule is
suppressed for this file; nothing here feeds simulated results.
"""
# lint: disable-file=determinism

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass

from repro.config import MachineConfig
from repro.core.pipeline import SMTPipeline
from repro.harness.runner import BenchScale, get_programs
from repro.workloads import get_mix


@dataclass(frozen=True)
class OverheadReport:
    """Best-of-N wall times for the bare and stamped loops."""

    mix: str
    cycles: int
    repeats: int
    bare_s: float
    stamped_s: float

    @property
    def overhead(self) -> float:
        """Relative slowdown of the stamped loop ((stamped-bare)/bare)."""
        if self.bare_s <= 0:
            return 0.0
        return (self.stamped_s - self.bare_s) / self.bare_s

    def results(self) -> dict[str, dict[str, float | int]]:
        """History-writer form: one named result per timed variant."""
        return {
            "telemetry_bare_loop": {"best_s": self.bare_s, "repeats": self.repeats},
            "telemetry_stamped_loop": {
                "best_s": self.stamped_s,
                "repeats": self.repeats,
            },
        }

    def format(self) -> str:
        return (
            f"telemetry overhead [{self.mix}, {self.cycles} cycles, "
            f"best of {self.repeats}]: bare {self.bare_s*1e3:.1f} ms, "
            f"stamped {self.stamped_s*1e3:.1f} ms, "
            f"overhead {self.overhead*100:+.2f}%"
        )


def _timed_run(mix_name: str, scale: BenchScale, telemetry: bool) -> float:
    machine = MachineConfig(num_threads=len(get_mix(mix_name).benchmarks))
    pipe = SMTPipeline(
        get_programs(mix_name, scale),
        machine=machine,
        sim=scale.sim_config(),
        telemetry=telemetry,
    )
    t0 = time.perf_counter()
    pipe.run()
    return time.perf_counter() - t0


def measure_overhead(
    mix_name: str = "MIX-A", cycles: int = 12_000, repeats: int = 3
) -> OverheadReport:
    """Best-of-``repeats`` bare vs. stamped (no-subscriber) wall time.

    The bare/stamped runs are interleaved so slow machine drift (thermal
    throttling, noisy neighbours) hits both variants symmetrically.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    scale = BenchScale(max_cycles=cycles)
    get_programs(mix_name, scale)  # warm the program cache outside timing
    _timed_run(mix_name, scale, telemetry=False)  # warm code paths / caches
    bare = float("inf")
    stamped = float("inf")
    for _ in range(repeats):
        bare = min(bare, _timed_run(mix_name, scale, telemetry=False))
        stamped = min(stamped, _timed_run(mix_name, scale, telemetry=True))
    return OverheadReport(
        mix=mix_name, cycles=cycles, repeats=repeats, bare_s=bare, stamped_s=stamped
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.telemetry.overhead",
        description="Fail when the zero-subscriber telemetry overhead "
        "exceeds a threshold.",
    )
    parser.add_argument("--mix", default="MIX-A", help="workload mix (default MIX-A)")
    parser.add_argument("--cycles", type=int, default=12_000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.05,
        help="maximum allowed relative overhead (default 0.05 = 5%%)",
    )
    parser.add_argument(
        "--history",
        default="BENCH_perf.json",
        metavar="PATH",
        help="BENCH_perf.json history to append the measurement to",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="do not persist the measurement into the history file",
    )
    args = parser.parse_args(argv)
    report = measure_overhead(args.mix, cycles=args.cycles, repeats=args.repeats)
    print(report.format())
    if not args.no_history:
        # Imported here: repro.perf builds on the telemetry layer, so
        # importing it at module scope would invert the layering.
        from repro.perf.history import KIND_TELEMETRY_OVERHEAD, append_entry

        append_entry(
            args.history,
            report.results(),
            kind=KIND_TELEMETRY_OVERHEAD,
            context={
                "mix": report.mix,
                "cycles": report.cycles,
                "overhead": report.overhead,
                "max_overhead": args.max_overhead,
            },
        )
        print(f"measurement appended to {args.history}")
    if report.overhead > args.max_overhead:
        print(
            f"FAIL: overhead {report.overhead*100:.2f}% exceeds "
            f"{args.max_overhead*100:.2f}%",
            file=sys.stderr,
        )
        return 1
    print(f"OK: within {args.max_overhead*100:.2f}% budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
