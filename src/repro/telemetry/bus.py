"""Structured event bus.

The bus is the simulator's single pub/sub spine: components emit
:class:`~repro.telemetry.topics.Topic`-typed events, observers
(tracers, recorders, tests) subscribe per topic or to everything.  Two
properties make it safe to leave wired into the hot path:

* **No-op fast path.**  ``emit`` returns after one dict lookup when
  nothing subscribed; hot call sites additionally pre-check
  ``wants(topic)`` (or cache it against :attr:`version`) so they skip
  even payload construction.
* **Schema validation on delivery only.**  The keyword set is checked
  against the topic's declared fields when an event is actually built,
  so the zero-subscriber path never pays for validation.  (The
  ``event-schema`` lint rule checks the same property statically.)

The pipeline stamps :attr:`cycle` and :attr:`stage` once per stage;
every event inherits them, which is what gives observers a total
within-cycle order (commit → writeback → issue → dispatch → fetch →
tick) for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.telemetry.topics import TOPICS, Topic

#: Subscriber callback signature.
Callback = Callable[["Event"], None]
#: Optional per-subscription event filter.
Predicate = Callable[["Event"], bool]


@dataclass(frozen=True)
class EventOrigin:
    """Worker attribution stamped onto relayed (re-published) events.

    ``worker`` is the parent-assigned compact slot index, ``pid`` the
    worker's OS process id, and ``ms`` the wall-clock arrival time at
    the parent in milliseconds since sweep start (the worker-side
    ``cycle``/``stage`` stamps stay on the event itself).
    """

    worker: int
    pid: int
    ms: float


@dataclass(frozen=True)
class Event:
    """One delivered event: topic name, stamps, and the typed payload.

    ``origin`` is None for events emitted in-process; events relayed
    from pool workers and re-published by the parent carry the worker
    attribution (see :meth:`EventBus.republish`).
    """

    topic: str
    cycle: int
    stage: str
    payload: dict[str, Any]
    origin: EventOrigin | None = None

    def __getitem__(self, key: str) -> Any:
        return self.payload[key]


@dataclass
class Subscription:
    """Handle returned by ``subscribe``; ``close()`` detaches it."""

    bus: "EventBus"
    topics: tuple[str, ...]  # empty tuple = wildcard (all topics)
    callback: Callback
    predicate: Predicate | None = None
    closed: bool = field(default=False, compare=False)

    def deliver(self, event: Event) -> None:
        if self.predicate is None or self.predicate(event):
            self.callback(event)

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.bus._detach(self)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class EventBus:
    """Typed topic pub/sub with a cheap nothing-subscribed path."""

    def __init__(self) -> None:
        #: Current simulator cycle; stamped by the pipeline run loop.
        self.cycle: int = 0
        #: Currently active pipeline stage ("" outside the cycle loop).
        self.stage: str = ""
        #: Bumped on every (un)subscribe so hot paths can cache wants().
        self.version: int = 0
        self._subs: dict[str, list[Subscription]] = {}
        self._all: list[Subscription] = []

    # ------------------------------------------------------------------
    # Subscription management
    # ------------------------------------------------------------------
    def subscribe(
        self,
        topic: Topic | Iterable[Topic],
        callback: Callback,
        *,
        predicate: Predicate | None = None,
    ) -> Subscription:
        """Attach ``callback`` to one topic (or an iterable of topics).

        ``predicate`` optionally filters events before delivery.
        Returns a :class:`Subscription`; close it (or use it as a
        context manager) to detach.
        """
        topics = (topic,) if isinstance(topic, Topic) else tuple(topic)
        if not topics:
            raise ValueError("subscribe requires at least one topic")
        sub = Subscription(self, tuple(t.name for t in topics), callback, predicate)
        for t in topics:
            if t.name not in TOPICS:
                raise KeyError(f"topic {t.name!r} is not registered")
            self._subs.setdefault(t.name, []).append(sub)
        self.version += 1
        return sub

    def subscribe_all(
        self, callback: Callback, *, predicate: Predicate | None = None
    ) -> Subscription:
        """Attach ``callback`` to every topic (wildcard subscription)."""
        sub = Subscription(self, (), callback, predicate)
        self._all.append(sub)
        self.version += 1
        return sub

    def _detach(self, sub: Subscription) -> None:
        if sub.topics:
            for name in sub.topics:
                entries = self._subs.get(name)
                if entries and sub in entries:
                    entries.remove(sub)
                    if not entries:
                        del self._subs[name]
        elif sub in self._all:
            self._all.remove(sub)
        self.version += 1

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def wants(self, topic: Topic) -> bool:
        """True when at least one subscriber would see ``topic``.

        Hot call sites cache this against :attr:`version` so the
        zero-subscriber path skips payload construction entirely.
        """
        if self._all:
            return True
        return topic.name in self._subs

    def emit(self, topic: Topic, **fields: Any) -> None:
        """Publish one event; a no-op when nothing subscribed.

        Keyword names must exactly match ``topic.fields`` (checked only
        when the event is actually delivered).
        """
        subs = self._subs.get(topic.name)
        if not subs and not self._all:
            return
        if fields.keys() != topic.fields:
            missing = sorted(topic.fields - fields.keys())
            extra = sorted(fields.keys() - topic.fields)
            raise ValueError(
                f"emit({topic.name!r}): payload does not match schema"
                f" (missing={missing}, unexpected={extra})"
            )
        event = Event(topic.name, self.cycle, self.stage, fields)
        if subs:
            for sub in list(subs):
                sub.deliver(event)
        for sub in list(self._all):
            sub.deliver(event)

    def republish(
        self,
        topic: Topic,
        payload: dict[str, Any],
        *,
        cycle: int,
        stage: str,
        origin: EventOrigin | None = None,
    ) -> None:
        """Re-deliver an event that was first emitted on another bus.

        The relay drain uses this to mirror worker-side events onto the
        parent bus: the payload dict arrives pre-built (already
        schema-checked by the worker-side ``emit``), ``cycle``/``stage``
        carry the *worker's* stamps rather than this bus's, and
        ``origin`` attributes the event to a worker slot/pid.  The
        schema is re-checked on delivery so a worker running different
        code cannot smuggle a malformed payload past subscribers.
        """
        subs = self._subs.get(topic.name)
        if not subs and not self._all:
            return
        if payload.keys() != topic.fields:
            missing = sorted(topic.fields - payload.keys())
            extra = sorted(payload.keys() - topic.fields)
            raise ValueError(
                f"republish({topic.name!r}): payload does not match schema"
                f" (missing={missing}, unexpected={extra})"
            )
        event = Event(topic.name, cycle, stage, payload, origin)
        if subs:
            for sub in list(subs):
                sub.deliver(event)
        for sub in list(self._all):
            sub.deliver(event)

    # ------------------------------------------------------------------
    def subscriber_count(self, topic: Topic | None = None) -> int:
        """Number of subscriptions on ``topic`` (or in total)."""
        if topic is not None:
            return len(self._subs.get(topic.name, ())) + len(self._all)
        distinct = {id(s) for subs in self._subs.values() for s in subs}
        return len(distinct) + len(self._all)
