"""Run provenance manifests.

A :class:`RunManifest` pins down everything needed to re-attribute a
number to the exact code+config that produced it: a canonical hash of
the machine/simulation configuration, the RNG seed, the git revision
(and whether the tree was dirty), package versions, host and
wall-clock.  Manifests are attached to every
:class:`~repro.core.pipeline.SimulationResult`, prepended to JSONL
exports, and stamped onto benchmark reports so BENCH_* trajectories
stay attributable.

Wall-clock and host reads are intentional here — provenance is *about*
when/where a run happened — so the determinism rule is suppressed for
this file; simulated results must never depend on any field below.
"""
# lint: disable-file=determinism

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import os
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Mapping

#: Manifest layout version; bump when fields change meaning.
MANIFEST_SCHEMA = 1


@dataclass(frozen=True)
class RunManifest:
    """Provenance record for one simulation or benchmark run."""

    schema: int
    created_utc: str
    host: str
    platform: str
    python: str
    packages: dict[str, str]
    git_sha: str | None
    git_dirty: bool | None
    seed: int | None
    config_hash: str
    config: dict[str, Any] = field(default_factory=dict)
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "RunManifest":
        known = {f.name for f in dataclasses.fields(RunManifest)}
        return RunManifest(**{k: v for k, v in data.items() if k in known})


def config_digest(config: Mapping[str, Any]) -> str:
    """Stable short hash of a JSON-serializable config mapping."""
    canon = json.dumps(config, sort_keys=True, default=repr)
    return hashlib.sha256(canon.encode()).hexdigest()[:16]


def _config_dict(obj: Any) -> Any:
    if obj is None:
        return None
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.asdict(obj)
    return repr(obj)


@functools.lru_cache(maxsize=1)
def _git_state() -> tuple[str | None, bool | None]:
    """(sha, dirty) of the repository containing this package, if any."""
    cwd = os.path.dirname(os.path.abspath(__file__))
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=5,
        ).stdout.strip() or None
        if sha is None:
            return None, None
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd, capture_output=True, text=True, timeout=5,
        )
        return sha, bool(status.stdout.strip())
    except (OSError, subprocess.SubprocessError):
        return None, None


def _package_versions() -> dict[str, str]:
    versions = {"python": platform.python_version()}
    try:
        import numpy

        versions["numpy"] = str(numpy.__version__)
    except Exception:  # pragma: no cover - numpy is a hard dependency
        pass
    try:
        from repro import __version__ as repro_version

        versions["repro"] = str(repro_version)
    except ImportError:
        pass
    return versions


def collect_manifest(
    machine: Any = None,
    sim: Any = None,
    *,
    seed: int | None = None,
    extra: Mapping[str, Any] | None = None,
) -> RunManifest:
    """Build a manifest for a run under ``machine``/``sim`` configs.

    ``machine``/``sim`` may be the repro config dataclasses or any
    JSON-representable objects; ``extra`` carries caller context
    (mix name, CLI argv, bench id, ...).
    """
    config = {"machine": _config_dict(machine), "sim": _config_dict(sim)}
    if seed is None and sim is not None and hasattr(sim, "seed"):
        seed = int(sim.seed)
    sha, dirty = _git_state()
    return RunManifest(
        schema=MANIFEST_SCHEMA,
        created_utc=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        host=platform.node(),
        platform=f"{platform.system()}-{platform.machine()}",
        python=sys.version.split()[0],
        packages=_package_versions(),
        git_sha=sha,
        git_dirty=dirty,
        seed=seed,
        config_hash=config_digest(config),
        config=config,
        extra=dict(extra or {}),
    )
