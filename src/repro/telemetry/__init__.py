"""repro.telemetry — structured observability for the simulator.

Layers (see ``docs/observability.md``):

* :mod:`repro.telemetry.topics` — the typed event-topic catalog;
* :mod:`repro.telemetry.bus` — the :class:`EventBus` pub/sub spine
  with a no-op fast path when nothing subscribes;
* :mod:`repro.telemetry.metrics` — hierarchical counters / gauges /
  histograms with ``snapshot()``/``diff()``;
* :mod:`repro.telemetry.provenance` — run manifests (config hash,
  seed, git SHA, package versions, host, wall-clock);
* :mod:`repro.telemetry.profiler` — per-stage wall-time self-profiler;
* :mod:`repro.telemetry.timeline` — decision/interval recording and
  the ``repro timeline`` rendering;
* :mod:`repro.telemetry.overhead` — the CI smoke check asserting the
  zero-subscriber path stays within budget;
* :mod:`repro.telemetry.relay` — the worker→parent cross-process
  event forwarder (bounded queue, batch+drop backpressure);
* :mod:`repro.telemetry.export` — Prometheus text exposition, JSON
  status documents and the ``--serve`` HTTP thread;
* :mod:`repro.telemetry.runlog` — run-scoped JSONL logging with
  run-id/config-hash correlation.
"""

from repro.telemetry.bus import Event, EventBus, EventOrigin, Subscription
from repro.telemetry.export import (
    MetricsServer,
    prometheus_text,
    read_status,
    status_path_for,
    write_status,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ScopedRegistry,
    StreamingHistogram,
)
from repro.telemetry.relay import RelayDrain, WorkerRelay
from repro.telemetry.profiler import StageProfile, StageProfiler
from repro.telemetry.provenance import RunManifest, collect_manifest, config_digest
from repro.telemetry.timeline import (
    RecordedEvent,
    TimelineRecorder,
    read_jsonl,
    render_timeline,
    timeline_json,
)
from repro.telemetry.topics import DECISION_TOPICS, STAGE_ORDER, TOPICS, Topic, get_topic

__all__ = [
    "Event",
    "EventBus",
    "EventOrigin",
    "Subscription",
    "Counter",
    "Gauge",
    "Histogram",
    "StreamingHistogram",
    "MetricsRegistry",
    "ScopedRegistry",
    "MetricsServer",
    "prometheus_text",
    "read_status",
    "status_path_for",
    "write_status",
    "RelayDrain",
    "WorkerRelay",
    "StageProfile",
    "StageProfiler",
    "RunManifest",
    "collect_manifest",
    "config_digest",
    "RecordedEvent",
    "TimelineRecorder",
    "read_jsonl",
    "render_timeline",
    "timeline_json",
    "DECISION_TOPICS",
    "STAGE_ORDER",
    "TOPICS",
    "Topic",
    "get_topic",
]
