"""Metrics exposition: Prometheus text format, status documents, HTTP.

Three thin, dependency-free layers over :class:`MetricsRegistry`:

* :func:`prometheus_text` renders the registry in the Prometheus text
  exposition format (version 0.0.4): dotted names mangle to
  underscores, ``help=`` metadata becomes ``# HELP``/``# TYPE`` lines,
  histograms expand to cumulative ``_bucket{le="..."}`` series plus
  ``_sum``/``_count``.
* **Status documents** — a JSON dict assembled by the engine (run id,
  config hash, per-worker health, point progress, live AVF gauges),
  written atomically next to the checkpoint shard on every append so
  ``repro monitor <checkpoint>`` can attach to a live *or dead* run.
* :class:`MetricsServer` — a stdlib ``http.server`` daemon thread
  serving ``GET /metrics`` (Prometheus) and ``GET /status`` (JSON).
  Handlers only *read* the registry; values are scalars mutated under
  the GIL, so a scrape racing the engine sees a consistent-enough
  point-in-time view without locks.

Serving wall-clock-adjacent observability is this module's purpose;
nothing here feeds simulated results.
"""
# lint: disable-file=determinism

from __future__ import annotations

import json
import os
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, TextIO

from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry

#: Content type Prometheus scrapers expect for the text format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_MANGLE = re.compile(r"[^a-zA-Z0-9_:]")


def mangle_metric_name(name: str) -> str:
    """Dotted registry name → valid Prometheus metric name."""
    mangled = _NAME_MANGLE.sub("_", name)
    if mangled and mangled[0].isdigit():
        mangled = "_" + mangled
    return mangled


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.10g}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for name, metric in registry:
        mangled = mangle_metric_name(name)
        if metric.help:
            lines.append(f"# HELP {mangled} {_escape_help(metric.help)}")
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {mangled} counter")
            lines.append(f"{mangled} {_fmt(metric.get())}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {mangled} gauge")
            lines.append(f"{mangled} {_fmt(metric.get())}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {mangled} histogram")
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.counts):
                cumulative += count
                lines.append(
                    f'{mangled}_bucket{{le="{_fmt(float(bound))}"}} {cumulative}'
                )
            lines.append(f'{mangled}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{mangled}_sum {_fmt(metric.total)}")
            lines.append(f"{mangled}_count {metric.count}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Status documents
# ----------------------------------------------------------------------
def status_path_for(checkpoint: str) -> str:
    """Status-document path derived from a checkpoint shard path.

    ``reports/sweep-ab12.jsonl`` → ``reports/sweep-ab12.status.json``;
    a path that already names a status document passes through, so
    ``repro monitor`` accepts either.
    """
    if checkpoint.endswith(".status.json"):
        return checkpoint
    stem, ext = os.path.splitext(checkpoint)
    return (stem if ext in (".jsonl", ".json") else checkpoint) + ".status.json"


def write_status(path: str, doc: dict[str, Any]) -> None:
    """Atomically write ``doc`` as JSON (tmp file + rename)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def read_status(path: str) -> dict[str, Any]:
    """Load a status document (accepts a checkpoint path too)."""
    with open(status_path_for(path)) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: status document is not a JSON object")
    return doc


def render_status(doc: dict[str, Any], *, now: float | None = None) -> str:
    """Human fleet view of one status document (``repro monitor``)."""
    if now is None:
        now = time.time()
    lines: list[str] = []
    points = doc.get("points", {})
    total = int(points.get("total", 0))
    settled = sum(
        int(points.get(s, 0)) for s in ("done", "cached", "skipped")
    )
    age = max(0.0, now - float(doc.get("updated", now)))
    lines.append(
        f"{doc.get('kind', 'run')} {doc.get('run_id', '?')} "
        f"[{doc.get('state', '?')}]  {settled}/{total} points  "
        f"jobs={doc.get('jobs', '?')}  updated {age:.1f}s ago"
    )
    tallies = "  ".join(
        f"{name}={points[name]}"
        for name in ("done", "cached", "retry", "stalled", "skipped")
        if points.get(name)
    )
    if tallies:
        lines.append(f"  points: {tallies}")
    for w in doc.get("workers", []):
        point = w.get("point") or "-"
        extras = ""
        if w.get("state") == "running":
            extras = (
                f"  {w.get('cycles', 0)} cyc"
                f" @ {w.get('cycles_per_sec', 0.0):.0f}/s"
                f"  {w.get('point_wall_s', 0.0):.1f}s in point"
            )
        lines.append(
            f"  w{w.get('worker')}  pid {w.get('pid')}  "
            f"[{w.get('state', '?'):>7}]  {point}{extras}"
            f"  rss {w.get('rss_kb', 0.0) / 1024.0:.0f}M"
            f"  beat {w.get('heartbeat_age_s', 0.0):.1f}s ago"
        )
    metrics = doc.get("metrics", {})
    avf_gauges = sorted(
        (name, value)
        for name, value in metrics.items()
        if name.startswith("worker.") and ".online_" in name
        and isinstance(value, (int, float))
    )
    if avf_gauges:
        lines.append(
            "  online AVF: "
            + "  ".join(
                f"{name.split('.', 1)[1]}={value:.3f}" for name, value in avf_gauges
            )
        )
    lines.append(
        f"  relay: events={metrics.get('relay.events', 0)}"
        f"  heartbeats={metrics.get('relay.heartbeats', 0)}"
        f"  dropped={metrics.get('relay.dropped', 0)}"
    )
    if doc.get("checkpoint"):
        lines.append(f"  checkpoint: {doc['checkpoint']}")
    return "\n".join(lines)


def watch_status(
    path: str,
    *,
    interval_s: float = 2.0,
    once: bool = False,
    stream: TextIO | None = None,
) -> int:
    """Poll and render a status document until the run finishes.

    ``path`` may be the status document or its checkpoint shard.  A
    dead run renders once (its final snapshot says ``finished``); a
    live one re-renders every ``interval_s`` until it finishes.
    """
    import sys

    out = stream if stream is not None else sys.stdout
    while True:
        doc = read_status(path)
        print(render_status(doc), file=out, flush=True)
        if once or doc.get("state") == "finished":
            return 0
        time.sleep(interval_s)
        print("", file=out)


# ----------------------------------------------------------------------
# HTTP exposition
# ----------------------------------------------------------------------
def parse_serve_spec(spec: str) -> tuple[str, int]:
    """``[HOST]:PORT`` → (host, port); bare ``:9099`` binds loopback."""
    host, sep, port_text = spec.rpartition(":")
    if not sep:
        host, port_text = "", spec
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid --serve spec {spec!r}: port must be an integer")
    if not 0 <= port <= 65535:
        raise ValueError(f"invalid --serve spec {spec!r}: port out of range")
    return host or "127.0.0.1", port


class MetricsServer:
    """Background HTTP thread: ``/metrics`` (Prometheus), ``/status`` (JSON)."""

    def __init__(
        self,
        registry: MetricsRegistry,
        status_provider: Callable[[], dict[str, Any]],
        *,
        host: str = "127.0.0.1",
        port: int = 9099,
    ) -> None:
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/metrics":
                        body = prometheus_text(registry).encode()
                        self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
                    elif path == "/status":
                        body = json.dumps(
                            status_provider(), indent=1, sort_keys=True
                        ).encode()
                        self._reply(200, "application/json", body)
                    else:
                        self._reply(404, "text/plain", b"not found\n")
                except Exception:  # noqa: BLE001 - a scrape racing the
                    # engine mid-mutation must not kill the serve thread;
                    # the scraper simply retries.
                    self._reply(503, "text/plain", b"busy, retry\n")

            def _reply(self, code: int, ctype: str, body: bytes) -> None:
                self.send_response(code)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                del args  # scrapes should not spam the progress line

        del server
        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return str(self._httpd.server_address[0])

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    def start(self) -> "MetricsServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
