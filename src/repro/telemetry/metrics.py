"""Hierarchical metrics registry: counters, gauges, histograms.

The registry is the cold-side counterpart of the event bus: components
keep plain attributes on their hot paths (a Python method call per
commit would be measurable), and everything observable is *published*
into one :class:`MetricsRegistry` under dotted hierarchical names
(``pipeline.commit.total``, ``mem.l2.miss_rate``, ``dvm.samples``),
replacing the previous practice of fishing ad-hoc stat attributes off
individual pipeline components.

``snapshot()`` flattens the registry to a JSON-serializable dict;
``diff(before, after)`` subtracts two snapshots, which is how
interval-to-interval and run-to-run deltas are computed without any
component keeping its own "previous value" state.
"""

from __future__ import annotations

import math
from typing import Iterator, Mapping, Union

SnapshotValue = Union[int, float, dict[str, float]]


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, help: str = "") -> None:
        self.value: float = 0
        self.help = help

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge instead")
        self.value += amount

    def get(self) -> float:
        return self.value


class Gauge:
    """Last-written value."""

    kind = "gauge"

    def __init__(self, help: str = "") -> None:
        self.value: float = 0.0
        self.help = help

    def set(self, value: float) -> None:
        self.value = float(value)

    def get(self) -> float:
        return self.value


class Histogram:
    """Fixed-bucket histogram with running count/sum/min/max.

    ``buckets`` are inclusive upper bounds; an implicit +inf bucket
    catches the overflow.  The default buckets suit fractions in
    [0, 1] (AVF estimates, miss rates, shares).
    """

    kind = "histogram"

    DEFAULT_BUCKETS: tuple[float, ...] = (
        0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
    )

    def __init__(
        self, buckets: tuple[float, ...] | None = None, help: str = ""
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else self.DEFAULT_BUCKETS
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be a sorted non-empty tuple")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.help = help

    def observe(self, value: float) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        self.minimum = min(self.minimum, v)
        self.maximum = max(self.maximum, v)
        for i, bound in enumerate(self.bounds):
            if v <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (bucket-wise sum).

        Both histograms must have identical bounds; shard histograms
        built by workers therefore aggregate exactly — merging N shards
        is indistinguishable from observing the concatenated stream.
        """
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.bounds} vs {other.bounds}"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def get(self) -> dict[str, float]:
        out: dict[str, float] = {
            "count": float(self.count),
            "sum": self.total,
            "min": self.minimum if self.count else float("nan"),
            "max": self.maximum if self.count else float("nan"),
            "mean": self.mean,
        }
        for bound, n in zip(self.bounds, self.counts):
            out[f"le_{bound:g}"] = float(n)
        out["le_inf"] = float(self.counts[-1])
        return out


class StreamingHistogram:
    """Unbounded-range streaming histogram with power-of-two buckets.

    Residency and lifetime measurements (cycles in the IQ, ROB
    occupancy, register lifetimes) have no natural upper bound, so the
    fixed-bucket :class:`Histogram` does not fit them.  This variant
    buckets a non-negative integer ``v`` by ``v.bit_length()`` — bucket
    ``k`` holds values in ``[2^(k-1), 2^k)`` (bucket 0 holds exactly 0)
    — keeping O(log max) state for any stream while still answering
    approximate quantile queries.  One observation is O(1).
    """

    kind = "streaming-histogram"

    def __init__(self) -> None:
        self.counts: dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.minimum = 0
        self.maximum = 0

    def observe(self, value: int) -> None:
        v = int(value)
        if v < 0:
            raise ValueError("StreamingHistogram takes non-negative values")
        if self.count == 0:
            self.minimum = v
            self.maximum = v
        else:
            self.minimum = min(self.minimum, v)
            self.maximum = max(self.maximum, v)
        self.count += 1
        self.total += v
        bucket = v.bit_length()
        self.counts[bucket] = self.counts.get(bucket, 0) + 1

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold ``other`` into this histogram (bucket-wise sum).

        Power-of-two buckets are position-independent, so any two
        streaming histograms merge exactly regardless of the value
        ranges each shard saw.
        """
        if not other.count:
            return
        if not self.count:
            self.minimum = other.minimum
            self.maximum = other.maximum
        else:
            self.minimum = min(self.minimum, other.minimum)
            self.maximum = max(self.maximum, other.maximum)
        self.count += other.count
        self.total += other.total
        for bucket, n in other.counts.items():
            self.counts[bucket] = self.counts.get(bucket, 0) + n

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile: the geometric midpoint of the
        bucket holding the ``q``-th observation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.count:
            return float("nan")
        rank = q * (self.count - 1)
        seen = 0
        for bucket in sorted(self.counts):
            seen += self.counts[bucket]
            if seen > rank:
                if bucket == 0:
                    return 0.0
                lo, hi = 1 << (bucket - 1), (1 << bucket) - 1
                return math.sqrt(lo * hi)
        return float(self.maximum)  # pragma: no cover - rank < count always hits

    def get(self) -> dict[str, float]:
        """Flatten to a JSON-safe summary (same shape as Histogram)."""
        out: dict[str, float] = {
            "count": float(self.count),
            "sum": float(self.total),
            "min": float(self.minimum) if self.count else float("nan"),
            "max": float(self.maximum) if self.count else float("nan"),
            "mean": self.mean,
        }
        for bucket in sorted(self.counts):
            upper = 0 if bucket == 0 else (1 << bucket) - 1
            out[f"le_{upper}"] = float(self.counts[bucket])
        return out


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Dotted-name registry of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, metric: Metric) -> Metric:
        if not name or name.startswith(".") or name.endswith("."):
            raise ValueError(f"invalid metric name {name!r}")
        existing = self._metrics.get(name)
        if existing is None:
            self._metrics[name] = metric
            return metric
        if type(existing) is not type(metric):
            raise TypeError(
                f"metric {name!r} already registered as {existing.kind}, "
                f"not {metric.kind}"
            )
        if metric.help and not existing.help:
            existing.help = metric.help
        return existing

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._get_or_create(name, Counter(help))
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._get_or_create(name, Gauge(help))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] | None = None,
        help: str = "",
    ) -> Histogram:
        metric = self._get_or_create(name, Histogram(buckets, help))
        assert isinstance(metric, Histogram)
        return metric

    # ------------------------------------------------------------------
    def child(self, prefix: str) -> "ScopedRegistry":
        """A view that prepends ``prefix.`` to every metric name."""
        return ScopedRegistry(self, prefix)

    def names(self, prefix: str = "") -> list[str]:
        return sorted(n for n in self._metrics if n.startswith(prefix))

    def __iter__(self) -> Iterator[tuple[str, Metric]]:
        return iter(sorted(self._metrics.items()))

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    def snapshot(self, prefix: str = "") -> dict[str, SnapshotValue]:
        """Flatten to ``{dotted_name: value}`` (histograms to dicts)."""
        return {
            name: metric.get()
            for name, metric in sorted(self._metrics.items())
            if name.startswith(prefix)
        }

    @staticmethod
    def diff(
        before: Mapping[str, SnapshotValue], after: Mapping[str, SnapshotValue]
    ) -> dict[str, SnapshotValue]:
        """Numeric delta of two snapshots (``after - before``).

        Names present only in ``after`` diff against zero; histogram
        summaries subtract field-wise (min/max are carried from
        ``after`` since they do not difference meaningfully).
        """
        out: dict[str, SnapshotValue] = {}
        for name, new in after.items():
            old = before.get(name)
            if isinstance(new, dict):
                old_d = old if isinstance(old, dict) else {}
                delta = {
                    k: v - old_d.get(k, 0.0)
                    for k, v in new.items()
                    if k not in ("min", "max", "mean")
                }
                delta["min"] = new.get("min", float("nan"))
                delta["max"] = new.get("max", float("nan"))
                out[name] = delta
            else:
                base = old if isinstance(old, (int, float)) else 0
                out[name] = new - base
        return out


class ScopedRegistry:
    """Prefix-scoped facade over a :class:`MetricsRegistry`."""

    def __init__(self, parent: MetricsRegistry, prefix: str):
        if not prefix or prefix.startswith(".") or prefix.endswith("."):
            raise ValueError(f"invalid registry prefix {prefix!r}")
        self._parent = parent
        self.prefix = prefix

    def _name(self, name: str) -> str:
        return f"{self.prefix}.{name}"

    def counter(self, name: str, help: str = "") -> Counter:
        return self._parent.counter(self._name(name), help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._parent.gauge(self._name(name), help)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] | None = None,
        help: str = "",
    ) -> Histogram:
        return self._parent.histogram(self._name(name), buckets, help)

    def child(self, prefix: str) -> "ScopedRegistry":
        return ScopedRegistry(self._parent, self._name(prefix))

    def snapshot(self) -> dict[str, SnapshotValue]:
        return self._parent.snapshot(self.prefix + ".")
