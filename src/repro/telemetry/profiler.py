"""Self-profiler: per-stage wall-time shares and cycles/sec.

The pipeline's cycle loop calls :meth:`StageProfiler.lap` after each
stage; the profiler accumulates wall time per stage and reports the
shares, so a hot-path regression shows up as one stage's share moving
instead of a mute end-to-end slowdown.  Profiling is opt-in (the
un-profiled loop contains no clock reads at all).

Wall-clock reads are the entire point of this module, so the
determinism rule is suppressed; profiler output must never feed back
into simulated results.
"""
# lint: disable-file=determinism

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.telemetry.topics import STAGE_ORDER


@dataclass(frozen=True)
class StageProfile:
    """One run's wall-time breakdown."""

    seconds: dict[str, float]
    cycles: int
    wall_s: float

    @property
    def cycles_per_sec(self) -> float:
        return self.cycles / self.wall_s if self.wall_s > 0 else 0.0

    def shares(self) -> dict[str, float]:
        """Per-stage percentage of accounted stage time (sums to ~100)."""
        total = sum(self.seconds.values())
        if total <= 0:
            return {stage: 0.0 for stage in self.seconds}
        return {stage: 100.0 * s / total for stage, s in self.seconds.items()}

    def format(self) -> str:
        shares = self.shares()
        lines = [
            f"self-profile: {self.cycles} cycles in {self.wall_s:.3f}s "
            f"({self.cycles_per_sec:,.0f} cycles/s)"
        ]
        for stage in self.seconds:
            lines.append(
                f"  {stage:<10s} {self.seconds[stage]*1e3:9.1f} ms  {shares[stage]:5.1f}%"
            )
        return "\n".join(lines)


class StageProfiler:
    """Accumulates wall time per pipeline stage across a run."""

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {stage: 0.0 for stage in STAGE_ORDER}
        self.cycles = 0
        self._mark = 0.0
        self._wall_start: float | None = None
        self._wall_s = 0.0

    # ------------------------------------------------------------------
    def start_run(self) -> None:
        self._wall_start = time.perf_counter()
        self._mark = self._wall_start

    def cycle_start(self) -> None:
        self.cycles += 1
        self._mark = time.perf_counter()

    def lap(self, stage: str) -> None:
        """Charge the time since the previous mark to ``stage``."""
        now = time.perf_counter()
        self._seconds[stage] = self._seconds.get(stage, 0.0) + (now - self._mark)
        self._mark = now

    def end_run(self) -> None:
        if self._wall_start is not None:
            self._wall_s += time.perf_counter() - self._wall_start
            self._wall_start = None

    # ------------------------------------------------------------------
    def report(self) -> StageProfile:
        """Snapshot the accumulated profile.

        Safe to call mid-run: the wall window is closed to account the
        elapsed time and immediately reopened, so cycles simulated
        after a mid-run report keep counting toward ``wall_s``.
        """
        mid_run = self._wall_start is not None
        if mid_run:
            self.end_run()
        profile = StageProfile(
            seconds=dict(self._seconds), cycles=self.cycles, wall_s=self._wall_s
        )
        if mid_run:
            self.start_run()
        return profile
