"""Worker→parent telemetry relay over a bounded multiprocessing queue.

Under ``repro sweep --jobs N`` every telemetry topic lives on the
worker's in-process bus, so the parent is blind to a point until it
finishes.  The relay fixes that with one bounded queue shared by all
workers:

* **Worker side** — :class:`WorkerRelay` subscribes to a small set of
  relay topics (interval closes, online reliability estimates,
  divergence records, perf span summaries), batches events, and ships
  each batch with ``put_nowait``.  A full queue *drops the batch and
  counts it*; the worker cycle loop is never blocked by a slow parent.
  Every message carries the worker's cumulative drop count, so drops
  are visible at the parent even though dropped batches never arrive.
* **Parent side** — :class:`RelayDrain` empties the queue from the
  engine's wait loop and re-publishes each event on the parent bus via
  :meth:`~repro.telemetry.bus.EventBus.republish`, stamped with an
  :class:`~repro.telemetry.bus.EventOrigin` (worker slot, pid, arrival
  ms).  Heartbeat messages from :mod:`repro.harness.health` ride the
  same queue and are handed to the health monitor instead.

Relayed payloads must be picklable scalars — the default topic set is
chosen so this holds; do not relay instruction-granularity topics
(``pipeline.commit`` carries a live ``DynInst``).

Wall-clock stamps here are observability-only and never feed simulated
results, so the determinism rule is suppressed.
"""
# lint: disable-file=determinism

from __future__ import annotations

import os
import queue as _queue
import time
from typing import Any, Callable

from repro.telemetry.bus import EventBus, EventOrigin, Subscription
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.topics import (
    TOPIC_INTERVAL_CLOSE,
    TOPIC_PERF_SPAN,
    TOPIC_RELIABILITY_DIVERGENCE,
    TOPIC_RELIABILITY_ESTIMATE,
    TOPICS,
    get_topic,
)

#: Topics a worker forwards by default: per-interval samples, online
#: reliability estimates/divergences, and perf span summaries.  All
#: carry scalar payloads and close at interval (not instruction) rate.
DEFAULT_RELAY_TOPICS: tuple[str, ...] = (
    TOPIC_INTERVAL_CLOSE.name,
    TOPIC_RELIABILITY_ESTIMATE.name,
    TOPIC_RELIABILITY_DIVERGENCE.name,
    TOPIC_PERF_SPAN.name,
)

#: Queue capacity in *messages* (batches + heartbeats), shared by all
#: workers.  Sized so a 16-worker fleet emitting at interval rate never
#: fills it as long as the parent pumps a few times per second.
DEFAULT_QUEUE_SIZE = 512

#: Events per batch before a worker ships it.
DEFAULT_BATCH_SIZE = 32

#: Message kinds on the wire.
MSG_EVENTS = "events"
MSG_HEALTH = "health"

#: Wire shape of one relayed event: (topic, cycle, stage, payload).
WireEvent = tuple[str, int, str, dict[str, Any]]

#: Callback handed health messages: (slot, pid, payload, arrival_ms).
HealthSink = Callable[[int, int, dict[str, Any], float], None]


class WorkerRelay:
    """Worker-side forwarder: subscribe, batch, ship, never block.

    ``queue`` is the shared ``multiprocessing.Queue`` (injected through
    the pool initializer — mp queues cannot ride ``submit()``
    arguments).  ``batch_size`` trades latency for queue pressure;
    heartbeats bypass batching entirely so liveness signals are never
    delayed behind event traffic.
    """

    def __init__(self, queue: Any, *, batch_size: int = DEFAULT_BATCH_SIZE) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self._queue = queue
        self._batch_size = batch_size
        self._pid = os.getpid()
        self._seq = 0
        self._pending: list[WireEvent] = []
        #: Events (and heartbeats) dropped because the queue was full.
        self.dropped = 0
        #: Events successfully handed to the queue.
        self.sent = 0

    def attach(
        self, bus: EventBus, topics: tuple[str, ...] = DEFAULT_RELAY_TOPICS
    ) -> Subscription:
        """Subscribe the relay to ``topics`` on the worker's bus."""
        return bus.subscribe([get_topic(n) for n in topics], self.on_event)

    def on_event(self, event: Any) -> None:
        """Buffer one bus event; ship the batch once it is full."""
        self._pending.append((event.topic, event.cycle, event.stage, event.payload))
        if len(self._pending) >= self._batch_size:
            self.flush()

    def flush(self) -> None:
        """Ship the pending batch (drop it, counted, if the queue is full)."""
        if not self._pending:
            return
        batch = self._pending
        self._pending = []
        self._put((MSG_EVENTS, self._pid, self._next_seq(), self.dropped, batch), len(batch))

    def send_health(self, payload: dict[str, Any]) -> None:
        """Ship one heartbeat immediately (unbatched)."""
        self._put((MSG_HEALTH, self._pid, self._next_seq(), self.dropped, payload), 1)

    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _put(self, message: tuple[Any, ...], weight: int) -> None:
        try:
            self._queue.put_nowait(message)
        except _queue.Full:
            self.dropped += weight
        else:
            self.sent += weight


class RelayDrain:
    """Parent-side consumer: drain the queue, re-publish with attribution.

    ``worker_slot`` maps a pid to the compact worker index the progress
    line and Chrome traces use (the engine shares its existing mapping
    so relayed events and point events agree on slots).  ``t0`` is the
    sweep-start ``time.time()`` reading; arrival stamps are
    milliseconds since then, the same domain as ``harness.point``
    ``start_ms`` times, so relayed events land on the right spot of a
    Chrome-trace worker track.
    """

    def __init__(
        self,
        queue: Any,
        bus: EventBus,
        *,
        worker_slot: Callable[[int], int],
        t0: float,
        metrics: MetricsRegistry | None = None,
        on_health: HealthSink | None = None,
    ) -> None:
        self._queue = queue
        self._bus = bus
        self._worker_slot = worker_slot
        self._t0 = t0
        self._on_health = on_health
        registry = metrics if metrics is not None else MetricsRegistry()
        self.metrics = registry
        self._batches = registry.counter(
            "relay.batches", help="Telemetry batches received from pool workers."
        )
        self._events = registry.counter(
            "relay.events", help="Relayed events re-published on the parent bus."
        )
        self._heartbeats = registry.counter(
            "relay.heartbeats", help="Worker health heartbeats received."
        )
        self._dropped = registry.counter(
            "relay.dropped",
            help="Events dropped worker-side because the relay queue was full.",
        )
        self._last_dropped: dict[int, int] = {}

    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Total events known dropped across all workers."""
        return int(self._dropped.get())

    def pump(self, max_messages: int = 1024) -> int:
        """Drain up to ``max_messages`` queued messages; returns count."""
        handled = 0
        while handled < max_messages:
            try:
                message = self._queue.get_nowait()
            except _queue.Empty:
                break
            handled += 1
            self._handle(message)
        return handled

    # ------------------------------------------------------------------
    def _handle(self, message: tuple[Any, ...]) -> None:
        kind, pid, _seq, dropped_total, body = message
        slot = self._worker_slot(pid)
        behind = dropped_total - self._last_dropped.get(pid, 0)
        if behind > 0:
            self._dropped.inc(behind)
            self._last_dropped[pid] = dropped_total
        arrival_ms = (time.time() - self._t0) * 1000.0
        if kind == MSG_EVENTS:
            self._batches.inc()
            origin = EventOrigin(worker=slot, pid=pid, ms=arrival_ms)
            for topic_name, cycle, stage, payload in body:
                topic = TOPICS.get(topic_name)
                if topic is None:  # catalog skew between parent and worker
                    continue
                self._events.inc()
                self._bus.republish(
                    topic, payload, cycle=cycle, stage=stage, origin=origin
                )
        elif kind == MSG_HEALTH:
            self._heartbeats.inc()
            if self._on_health is not None:
                self._on_health(slot, pid, body, arrival_ms)
