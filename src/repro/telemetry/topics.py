"""Typed event-topic catalog.

Every event the simulator emits flows through a :class:`Topic`
registered in this module: the topic's ``fields`` set is the event's
schema.  ``EventBus.emit`` validates the keyword set against the schema
whenever an event is actually delivered, and the ``event-schema`` lint
rule (``repro.analysis.checkers.event_schema``) verifies every
``bus.emit(...)`` call site statically, so the catalog below is the
single source of truth for what observers may rely on.

Two fields are stamped automatically by the bus and therefore never
appear in ``fields``:

* ``cycle`` — the simulator cycle the event was emitted in;
* ``stage`` — the pipeline stage active at emission time
  (``commit``/``writeback``/``issue``/``dispatch``/``fetch``/``tick``,
  or ``""`` outside the cycle loop).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Topic:
    """One event type: a dotted name plus its declared payload fields."""

    name: str
    fields: frozenset[str]
    description: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("topic name must be non-empty")


def _topic(name: str, fields: tuple[str, ...], description: str) -> Topic:
    return Topic(name=name, fields=frozenset(fields), description=description)


#: Pipeline stage order within one simulated cycle (reverse-pipeline).
STAGE_ORDER: tuple[str, ...] = (
    "commit",
    "writeback",
    "issue",
    "dispatch",
    "fetch",
    "tick",
)

# ----------------------------------------------------------------------
# Interval bookkeeping
# ----------------------------------------------------------------------
TOPIC_INTERVAL_CLOSE = _topic(
    "interval.close",
    (
        "index",
        "end_cycle",
        "committed",
        "ipc",
        "avg_ready_queue_len",
        "avg_waiting_queue_len",
        "l2_misses",
        "online_avf_estimate",
        "online_rob_estimate",
        "iq_limit",
    ),
    "one adaptation interval closed (per-interval sample record)",
)

# ----------------------------------------------------------------------
# Dynamic IQ resource allocation (Optimizations 1 and 2)
# ----------------------------------------------------------------------
TOPIC_IQL_CAP = _topic(
    "iql.cap",
    ("old_limit", "new_limit", "ipc", "avg_ready_queue_len"),
    "the dispatch-side IQ allocation cap changed at an interval boundary",
)

TOPIC_FLUSH_SWITCH = _topic(
    "flush.switch",
    ("enabled", "l2_misses", "threshold"),
    "Optimization 2 toggled the Tcache_miss-triggered FLUSH fetch policy",
)

# ----------------------------------------------------------------------
# Dynamic Vulnerability Management (Section 5)
# ----------------------------------------------------------------------
TOPIC_DVM_SAMPLE = _topic(
    "dvm.sample",
    ("estimate", "triggered", "wq_ratio"),
    "fine-grained online-AVF sample reached the DVM controller",
)

TOPIC_DVM_TRIGGER = _topic(
    "dvm.trigger",
    ("reason", "estimate"),
    "the DVM response mechanism armed (reason: 'sample' or 'l2_miss')",
)

TOPIC_DVM_RATIO = _topic(
    "dvm.ratio",
    ("old_ratio", "new_ratio", "direction"),
    "slow-up/rapid-down adaptation changed wq_ratio",
)

TOPIC_DVM_THROTTLE = _topic(
    "dvm.throttle",
    ("thread", "outstanding_l2"),
    "dispatch of a thread was gated because it has outstanding L2 misses "
    "while the response mechanism is armed",
)

TOPIC_DVM_RESTORE = _topic(
    "dvm.restore",
    ("thread", "ace_count"),
    "all threads L2-stalled below the trigger threshold: dispatch restored "
    "for the thread with the fewest predicted-ACE fetch-queue instructions",
)

# ----------------------------------------------------------------------
# Front end
# ----------------------------------------------------------------------
TOPIC_FETCH_FLUSH = _topic(
    "fetch.flush",
    ("thread", "after_tag"),
    "the FLUSH fetch policy requested a post-miss flush of one thread",
)

TOPIC_PDG_GATE = _topic(
    "pdg.gate",
    ("thread", "pending", "gated"),
    "the PDG predictor's pending-miss count crossed its gating threshold "
    "(gated=True) or dropped back below it (gated=False)",
)

# ----------------------------------------------------------------------
# Performance observability (repro.perf)
# ----------------------------------------------------------------------
TOPIC_PERF_SPAN = _topic(
    "perf.span",
    ("name", "cat", "ts_us", "dur_us", "depth"),
    "one hierarchical wall-time span closed (repro.perf span tracer)",
)

# ----------------------------------------------------------------------
# Experiment harness (repro.harness.parallel)
# ----------------------------------------------------------------------
TOPIC_HARNESS_POINT = _topic(
    "harness.point",
    (
        "index",
        "label",
        "status",
        "start_ms",
        "elapsed_ms",
        "attempt",
        "worker",
        "avf",
        "rob_avf",
    ),
    "one sweep point changed state in the parallel execution engine "
    "(status: done/cached/retry/stalled/skipped; times are ms since sweep "
    "start; avf/rob_avf are the point's IQ/ROB AVF when its metrics carry "
    "them, else None)",
)

TOPIC_WORKER_HEALTH = _topic(
    "harness.health",
    (
        "worker",
        "pid",
        "kind",
        "point",
        "cycles",
        "cycles_per_sec",
        "rss_kb",
        "point_wall_s",
    ),
    "one relayed worker heartbeat reached the parent (kind: "
    "start/beat/end; cycles/cycles_per_sec cover the current point, "
    "rss_kb is the worker's resident set from /proc/self/statm, "
    "point_wall_s is wall time spent in the current point so far)",
)

# ----------------------------------------------------------------------
# Instruction-granularity topics (hot; guarded by cached wants() flags)
# ----------------------------------------------------------------------
TOPIC_COMMIT = _topic(
    "pipeline.commit",
    ("inst",),
    "one dynamic instruction committed (payload carries the DynInst)",
)

TOPIC_SQUASH = _topic(
    "pipeline.squash",
    ("thread", "after_tag", "insts"),
    "one squash swept a thread's instructions younger than after_tag",
)

# ----------------------------------------------------------------------
# Reliability observability (repro.reliability.observe)
# ----------------------------------------------------------------------
TOPIC_RELIABILITY_ATTRIBUTION = _topic(
    "reliability.attribution",
    (
        "thread",
        "ace",
        "quiet",
        "iq_slot",
        "iq_bit_cycles",
        "rob_bit_cycles",
        "fu_bit_cycles",
        "dispatch_cycle",
        "issue_cycle",
        "iq_leave_cycle",
        "commit_cycle",
    ),
    "the oracle ACE-ness of one committed instruction became final: the "
    "AVF accountant attributed its IQ/ROB/FU ACE-bit-cycles (hot; "
    "guarded by a cached wants() flag in the accountant)",
)

TOPIC_RELIABILITY_RF = _topic(
    "reliability.rf",
    ("thread", "commit_cycle", "last_read_cycle", "bit_cycles"),
    "one architectural register lifetime closed (register-file ACE-bit "
    "attribution, producer commit to last read)",
)

TOPIC_RELIABILITY_LATE_ACE = _topic(
    "reliability.late_ace",
    ("thread", "total"),
    "an instruction was marked ACE after already resolving un-ACE — the "
    "post-graduation ACE window was too small (total is the running count)",
)

TOPIC_RELIABILITY_ESTIMATE = _topic(
    "reliability.estimate",
    ("structure", "estimate", "threshold", "triggered"),
    "DVM's structure-tagged online AVF estimate at one sample point, "
    "with the trigger threshold it was compared against",
)

TOPIC_RELIABILITY_DIVERGENCE = _topic(
    "reliability.divergence",
    ("structure", "index", "end_cycle", "oracle_avf", "online_estimate", "divergence"),
    "end-of-run online-vs-oracle comparison: one event per interval per "
    "DVM-governable structure once the oracle interval AVF is final",
)


def _catalog() -> dict[str, Topic]:
    found: dict[str, Topic] = {}
    for value in globals().values():
        if isinstance(value, Topic):
            if value.name in found:
                raise ValueError(f"duplicate topic name {value.name!r}")
            found[value.name] = value
    return found


#: name -> Topic for every registered topic.
TOPICS: dict[str, Topic] = _catalog()

#: Controller-decision topics (what the timeline calls "decisions").
DECISION_TOPICS: tuple[Topic, ...] = (
    TOPIC_IQL_CAP,
    TOPIC_FLUSH_SWITCH,
    TOPIC_DVM_TRIGGER,
    TOPIC_DVM_RATIO,
    TOPIC_DVM_THROTTLE,
    TOPIC_DVM_RESTORE,
    TOPIC_FETCH_FLUSH,
    TOPIC_PDG_GATE,
)


def get_topic(name: str) -> Topic:
    """Look up a registered topic by dotted name."""
    try:
        return TOPICS[name]
    except KeyError:
        raise KeyError(
            f"unknown topic {name!r}; registered: {sorted(TOPICS)}"
        ) from None
