"""Interval-trace analysis.

The paper's Section 5 premise is that runtime IQ vulnerability "varies
significantly during program execution".  These helpers quantify that
variation on per-interval AVF traces: dispersion, phase structure
(lag autocorrelation), and emergency-run statistics (how long the AVF
stays above a target once it crosses it — the quantity DVM's
rapid-decrease adaptation is designed around).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class IntervalTraceStats:
    """Summary of one per-interval AVF trace."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def cv(self) -> float:
        """Coefficient of variation — the paper's "time varying
        behavior" in one number."""
        return self.std / self.mean if self.mean else 0.0

    @property
    def dynamic_range(self) -> float:
        return self.maximum / self.minimum if self.minimum > 0 else float("inf")


def trace_stats(trace: Sequence[float]) -> IntervalTraceStats:
    """Dispersion summary of an interval trace."""
    vals = np.asarray(list(trace), dtype=float)
    if vals.size == 0:
        return IntervalTraceStats(0, 0.0, 0.0, 0.0, 0.0)
    return IntervalTraceStats(
        n=int(vals.size),
        mean=float(vals.mean()),
        std=float(vals.std()),
        minimum=float(vals.min()),
        maximum=float(vals.max()),
    )


def autocorrelation(trace: Sequence[float], lag: int = 1) -> float:
    """Pearson autocorrelation at ``lag`` (phase persistence: high lag-1
    autocorrelation means AVF phases are long relative to the interval,
    which is what makes interval-based adaptation effective)."""
    vals = np.asarray(list(trace), dtype=float)
    if lag <= 0:
        raise ValueError("lag must be positive")
    if vals.size <= lag + 1:
        return 0.0
    a, b = vals[:-lag], vals[lag:]
    sa, sb = a.std(), b.std()
    if sa == 0 or sb == 0:
        return 0.0
    return float(((a - a.mean()) * (b - b.mean())).mean() / (sa * sb))


def emergency_runs(trace: Sequence[float], target: float) -> list[int]:
    """Lengths of consecutive above-target runs (emergency episodes)."""
    runs: list[int] = []
    current = 0
    for v in trace:
        if v > target:
            current += 1
        elif current:
            runs.append(current)
            current = 0
    if current:
        runs.append(current)
    return runs


@dataclass(frozen=True)
class EmergencyProfile:
    """Emergency-episode structure of a trace against a target."""

    pve: float
    episodes: int
    mean_run: float
    max_run: int

    @property
    def bursty(self) -> bool:
        """True when emergencies cluster into long runs rather than
        scattering — the regime where a closed-loop controller beats a
        static policy."""
        return self.mean_run >= 2.0


def emergency_profile(trace: Sequence[float], target: float) -> EmergencyProfile:
    vals = list(trace)
    runs = emergency_runs(vals, target)
    above = sum(runs)
    return EmergencyProfile(
        pve=above / len(vals) if vals else 0.0,
        episodes=len(runs),
        mean_run=above / len(runs) if runs else 0.0,
        max_run=max(runs) if runs else 0,
    )
