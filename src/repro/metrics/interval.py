"""Interval-trace analysis.

The paper's Section 5 premise is that runtime IQ vulnerability "varies
significantly during program execution".  These helpers quantify that
variation on per-interval AVF traces: dispersion, phase structure
(lag autocorrelation), and emergency-run statistics (how long the AVF
stays above a target once it crosses it — the quantity DVM's
rapid-decrease adaptation is designed around).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class IntervalTraceStats:
    """Summary of one per-interval AVF trace.

    Undefined quantities are NaN, not 0 or inf: an empty trace has no
    mean, a zero-mean trace has no coefficient of variation, and a
    trace touching zero has no meaningful max/min ratio.  NaN keeps
    "undefined" from masquerading as a real measurement in downstream
    aggregation (0.0 would deflate averages; inf would dominate them).
    Use ``math.isnan`` to test before aggregating.
    """

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def cv(self) -> float:
        """Coefficient of variation — the paper's "time varying
        behavior" in one number.  NaN when the mean is zero (or the
        trace was empty): dispersion relative to nothing is undefined.
        """
        return self.std / self.mean if self.mean else float("nan")

    @property
    def dynamic_range(self) -> float:
        """``maximum / minimum``; NaN when the minimum is not strictly
        positive — an AVF phase ratio against a zero (or negative)
        floor carries no information."""
        return self.maximum / self.minimum if self.minimum > 0 else float("nan")


def trace_stats(trace: Sequence[float], ddof: int = 0) -> IntervalTraceStats:
    """Dispersion summary of an interval trace.

    ``ddof`` is numpy's delta-degrees-of-freedom for the standard
    deviation.  The default 0 is the population std: an interval trace
    is the complete record of the run, not a sample from a larger one.
    Pass ``ddof=1`` (Bessel's correction) when treating a trace as a
    sample of a workload's long-run behaviour — e.g. comparing short
    scaled runs against the paper's 400M-instruction windows.

    An empty trace yields ``n == 0`` and NaN for every statistic.
    """
    vals = np.asarray(list(trace), dtype=float)
    if vals.size == 0:
        nan = float("nan")
        return IntervalTraceStats(0, nan, nan, nan, nan)
    if not 0 <= ddof < vals.size:
        raise ValueError("ddof must be in [0, len(trace))")
    return IntervalTraceStats(
        n=int(vals.size),
        mean=float(vals.mean()),
        std=float(vals.std(ddof=ddof)),
        minimum=float(vals.min()),
        maximum=float(vals.max()),
    )


def autocorrelation(trace: Sequence[float], lag: int = 1) -> float:
    """Pearson autocorrelation at ``lag`` (phase persistence: high lag-1
    autocorrelation means AVF phases are long relative to the interval,
    which is what makes interval-based adaptation effective)."""
    vals = np.asarray(list(trace), dtype=float)
    if lag <= 0:
        raise ValueError("lag must be positive")
    if vals.size <= lag + 1:
        return 0.0
    a, b = vals[:-lag], vals[lag:]
    sa, sb = a.std(), b.std()
    if sa == 0 or sb == 0:
        return 0.0
    return float(((a - a.mean()) * (b - b.mean())).mean() / (sa * sb))


def emergency_runs(trace: Sequence[float], target: float) -> list[int]:
    """Lengths of consecutive above-target runs (emergency episodes)."""
    runs: list[int] = []
    current = 0
    for v in trace:
        if v > target:
            current += 1
        elif current:
            runs.append(current)
            current = 0
    if current:
        runs.append(current)
    return runs


@dataclass(frozen=True)
class EmergencyProfile:
    """Emergency-episode structure of a trace against a target."""

    pve: float
    episodes: int
    mean_run: float
    max_run: int

    @property
    def bursty(self) -> bool:
        """True when emergencies cluster into long runs rather than
        scattering — the regime where a closed-loop controller beats a
        static policy."""
        return self.mean_run >= 2.0


def emergency_profile(trace: Sequence[float], target: float) -> EmergencyProfile:
    vals = list(trace)
    runs = emergency_runs(vals, target)
    above = sum(runs)
    return EmergencyProfile(
        pve=above / len(vals) if vals else 0.0,
        episodes=len(runs),
        mean_run=above / len(runs) if runs else 0.0,
        max_run=max(runs) if runs else 0,
    )
