"""Performance/reliability metrics used by the paper's evaluation."""

from repro.metrics.stats import (
    geometric_mean,
    harmonic_ipc,
    normalized,
    pve_from_intervals,
    weighted_speedup,
)
from repro.metrics.interval import (
    EmergencyProfile,
    IntervalTraceStats,
    autocorrelation,
    emergency_profile,
    emergency_runs,
    trace_stats,
)

__all__ = [
    "harmonic_ipc",
    "weighted_speedup",
    "normalized",
    "geometric_mean",
    "pve_from_intervals",
    "trace_stats",
    "autocorrelation",
    "emergency_runs",
    "emergency_profile",
    "IntervalTraceStats",
    "EmergencyProfile",
]
