"""Metric helpers.

The paper reports **throughput IPC** (committed instructions per cycle
summed over threads) and **harmonic IPC** "which takes fairness into
consideration" (Luo, Gummaraju & Franklin, ISPASS 2001):

    hmean = N / Σ_i (IPC_single_i / IPC_smt_i)

where ``IPC_single_i`` is thread *i*'s IPC when running alone on the
machine.  **PVE** (percentage of vulnerability emergencies, Section
5.2) is the fraction of execution intervals whose IQ AVF exceeds the
reliability target.
"""

from __future__ import annotations

import math
from collections.abc import Sequence


def harmonic_ipc(smt_ipc: Sequence[float], single_ipc: Sequence[float]) -> float:
    """Harmonic mean of per-thread relative IPCs (fairness-aware)."""
    if len(smt_ipc) != len(single_ipc):
        raise ValueError("smt_ipc and single_ipc must have equal length")
    if not smt_ipc:
        return 0.0
    total = 0.0
    for smt, single in zip(smt_ipc, single_ipc):
        if single <= 0:
            raise ValueError("single-thread IPC must be positive")
        if smt <= 0:
            return 0.0  # a starved thread zeroes fairness
        total += single / smt
    return len(smt_ipc) / total


def weighted_speedup(smt_ipc: Sequence[float], single_ipc: Sequence[float]) -> float:
    """Σ_i IPC_smt_i / IPC_single_i (Snavely & Tullsen)."""
    if len(smt_ipc) != len(single_ipc):
        raise ValueError("smt_ipc and single_ipc must have equal length")
    total = 0.0
    for smt, single in zip(smt_ipc, single_ipc):
        if single <= 0:
            raise ValueError("single-thread IPC must be positive")
        total += smt / single
    return total


def normalized(value: float, baseline: float) -> float:
    """value / baseline, guarding a zero baseline."""
    if baseline == 0:
        return 0.0
    return value / baseline


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    vals = list(values)
    if not vals:
        return 0.0
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def pve_from_intervals(interval_avf: Sequence[float], target: float) -> float:
    """Fraction of intervals whose AVF exceeds ``target``."""
    vals = list(interval_avf)
    if not vals:
        return 0.0
    return sum(1 for a in vals if a > target) / len(vals)
