"""repro — reproduction of "Optimizing Issue Queue Reliability to Soft
Errors on Simultaneous Multithreaded Architectures" (Fu, Zhang, Li,
Fortes; ICPP 2008).

The package provides:

* a cycle-level SMT out-of-order processor simulator
  (:mod:`repro.core`) with the paper's Table 2 machine configuration
  (:mod:`repro.config`), caches/TLBs (:mod:`repro.memory`) and SMT
  fetch policies (:mod:`repro.frontend`);
* synthetic SPEC CPU2000 stand-in workloads (:mod:`repro.isa`,
  :mod:`repro.workloads`);
* the paper's reliability framework (:mod:`repro.reliability`):
  post-retirement ACE analysis, bit-level AVF accounting, offline PC
  profiling, VISA issue, dynamic IQ resource allocation and DVM;
* an experiment harness regenerating every table and figure
  (:mod:`repro.harness`).

Quickstart::

    from repro import SMTPipeline, SimulationConfig, get_mix
    programs = get_mix("CPU-A").programs(seed=1)
    result = SMTPipeline(programs, sim=SimulationConfig.scaled_for_bench()).run()
    print(result.ipc, result.iq_avf)
"""

from repro.config import (
    BranchPredictorConfig,
    CacheConfig,
    MachineConfig,
    ReliabilityConfig,
    SimulationConfig,
    TLBConfig,
)
from repro.core.pipeline import SMTPipeline, SimulationResult
from repro.core.scheduler import OldestFirstScheduler, VISAScheduler, make_scheduler
from repro.frontend.fetch_policy import make_fetch_policy
from repro.isa.generator import ProgramGenerator, generate_program
from repro.isa.personalities import PERSONALITIES, get_personality
from repro.reliability.ace import ACEAnalyzer
from repro.reliability.avf import AVFAccount, AVFBitLayout, Structure
from repro.reliability.dvm import DVMController
from repro.reliability.profiling import apply_profile, profile_and_apply, profile_program
from repro.reliability.resource_alloc import (
    DynamicIQAllocation,
    L2MissSensitiveAllocation,
)
from repro.workloads import MIXES, get_mix, mixes_in_category

__version__ = "1.0.0"

__all__ = [
    "MachineConfig",
    "SimulationConfig",
    "ReliabilityConfig",
    "CacheConfig",
    "TLBConfig",
    "BranchPredictorConfig",
    "SMTPipeline",
    "SimulationResult",
    "VISAScheduler",
    "OldestFirstScheduler",
    "make_scheduler",
    "make_fetch_policy",
    "ProgramGenerator",
    "generate_program",
    "PERSONALITIES",
    "get_personality",
    "ACEAnalyzer",
    "AVFAccount",
    "AVFBitLayout",
    "Structure",
    "DVMController",
    "DynamicIQAllocation",
    "L2MissSensitiveAllocation",
    "profile_program",
    "profile_and_apply",
    "apply_profile",
    "MIXES",
    "get_mix",
    "mixes_in_category",
    "__version__",
]
