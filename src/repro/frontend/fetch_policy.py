"""SMT fetch policies: ICOUNT, STALL, FLUSH, DG, PDG (+ round-robin).

Each policy decides, every cycle, which threads may fetch and in what
priority order.  They observe the pipeline through the small
``CoreView`` protocol so they are unit-testable without a full
pipeline.

* **ICOUNT** (Tullsen et al., ISCA'96): priority to the thread with the
  fewest in-flight instructions (front-end + IQ).
* **STALL** (Tullsen & Brown, MICRO'01): ICOUNT, but a thread with an
  outstanding L2 miss is fetch-gated until the miss returns.
* **FLUSH** (ibid.): STALL, plus the offending thread's instructions
  younger than the missing load are flushed from the pipeline,
  releasing its IQ/ROB/LSQ entries for other threads.  At least one
  thread is always allowed to fetch.
* **DG** (El-Moursy & Albonesi, HPCA'03): a thread is gated while its
  number of outstanding L1-data misses exceeds a threshold.
* **PDG** (ibid.): like DG but gates on *predicted* misses: a per-PC
  2-bit saturating miss predictor classifies loads at dispatch, so
  gating starts before the misses are discovered.
"""

from __future__ import annotations

from typing import Any, Protocol

from repro.isa.instruction import DynInst
from repro.telemetry.bus import EventBus
from repro.telemetry.topics import TOPIC_FETCH_FLUSH, TOPIC_PDG_GATE


class CoreView(Protocol):
    """What a fetch policy may observe/request of the pipeline."""

    @property
    def num_threads(self) -> int: ...

    def in_flight(self, tid: int) -> int: ...

    def outstanding_l2(self, tid: int) -> int: ...

    def outstanding_l1d(self, tid: int) -> int: ...

    def request_flush(self, tid: int, after_tag: int) -> None: ...


class FetchPolicy:
    """Base policy: ICOUNT ordering, no gating."""

    name = "base"

    def __init__(self) -> None:
        #: Telemetry spine; the pipeline swaps in its shared bus.
        self.bus = EventBus()

    def priority(self, core: CoreView) -> list[int]:
        """Thread ids, highest fetch priority first (ICOUNT order)."""
        return sorted(range(core.num_threads), key=lambda t: (core.in_flight(t), t))

    def gated(self, core: CoreView, tid: int) -> bool:
        return False

    def select(self, core: CoreView) -> list[int]:
        """Priority-ordered list of threads allowed to fetch this cycle."""
        order = self.priority(core)
        allowed = [t for t in order if not self.gated(core, t)]
        if not allowed and self.always_fetch_one and order:
            allowed = [order[0]]
        return allowed

    #: FLUSH "continues to fetch for at least one thread even if all
    #: other threads are stalled" (Section 4); other policies may gate all.
    always_fetch_one = False

    # ------------------------------------------------------------------
    # Pipeline event hooks (default: ignore)
    # ------------------------------------------------------------------
    def on_l2_miss(self, core: CoreView, inst: DynInst) -> None:
        """A load was discovered to miss in L2 at execute."""

    def on_l2_return(self, core: CoreView, tid: int) -> None:
        """The last outstanding L2 miss of ``tid`` completed."""

    def on_load_dispatch(self, core: CoreView, inst: DynInst) -> None:
        """A load entered the issue queue (PDG hook)."""

    def on_load_resolved(self, core: CoreView, inst: DynInst, l1_miss: bool) -> None:
        """A load's cache outcome is known (PDG predictor training)."""

    def on_load_left(self, core: CoreView, inst: DynInst) -> None:
        """A load left the pipeline (completed or squashed; PDG hook)."""

    def reset(self) -> None:
        """Clear policy-internal state between runs."""


class ICountPolicy(FetchPolicy):
    name = "icount"


class RoundRobinPolicy(FetchPolicy):
    """Cycle-rotating baseline (not in the paper; useful as a control)."""

    name = "rr"

    def __init__(self) -> None:
        super().__init__()
        self._turn = 0

    def priority(self, core: CoreView) -> list[int]:
        n = core.num_threads
        self._turn = (self._turn + 1) % n
        return [(self._turn + i) % n for i in range(n)]

    def reset(self) -> None:
        self._turn = 0


class StallPolicy(FetchPolicy):
    name = "stall"

    def gated(self, core: CoreView, tid: int) -> bool:
        return core.outstanding_l2(tid) > 0


class FlushPolicy(StallPolicy):
    name = "flush"
    always_fetch_one = True

    def on_l2_miss(self, core: CoreView, inst: DynInst) -> None:
        # Flush everything in the offending thread younger than the
        # missing load; fetch stays gated via the STALL rule until the
        # miss returns.
        if self.bus.wants(TOPIC_FETCH_FLUSH):
            self.bus.emit(TOPIC_FETCH_FLUSH, thread=inst.thread, after_tag=inst.tag)
        core.request_flush(inst.thread, inst.tag)


class DGPolicy(FetchPolicy):
    """Data gating on actual outstanding L1D misses."""

    name = "dg"

    def __init__(self, threshold: int = 2):
        super().__init__()
        if threshold < 1:
            raise ValueError("DG threshold must be >= 1")
        self.threshold = threshold

    def gated(self, core: CoreView, tid: int) -> bool:
        return core.outstanding_l1d(tid) >= self.threshold


class PDGPolicy(FetchPolicy):
    """Predictive data gating using a per-PC 2-bit miss predictor."""

    name = "pdg"

    def __init__(self, threshold: int = 2, table_size: int = 1024):
        super().__init__()
        if threshold < 1:
            raise ValueError("PDG threshold must be >= 1")
        if table_size & (table_size - 1):
            raise ValueError("PDG table size must be a power of two")
        self.threshold = threshold
        self._mask = table_size - 1
        self._table = [1] * table_size  # weakly no-miss
        self._pending: list[int] = []
        self._counted: set[int] = set()

    def reset(self) -> None:
        self._table = [1] * (self._mask + 1)
        self._pending = []
        self._counted = set()

    def _idx(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict_miss(self, pc: int) -> bool:
        return self._table[self._idx(pc)] >= 2

    def gated(self, core: CoreView, tid: int) -> bool:
        if not self._pending:
            return False
        return self._pending[tid] >= self.threshold

    def on_load_dispatch(self, core: CoreView, inst: DynInst) -> None:
        if not self._pending:
            self._pending = [0] * core.num_threads
        if self.predict_miss(inst.pc):
            self._pending[inst.thread] += 1
            self._counted.add(inst.tag)
            if self._pending[inst.thread] == self.threshold and self.bus.wants(
                TOPIC_PDG_GATE
            ):
                self.bus.emit(
                    TOPIC_PDG_GATE,
                    thread=inst.thread,
                    pending=self._pending[inst.thread],
                    gated=True,
                )

    # Predictor training only: the counters feed the next predict_miss()
    # but no gating decision happens here — the gate transitions are
    # emitted where the pending counts actually cross the threshold
    # (on_load_dispatch / on_load_left).
    def on_load_resolved(  # lint: disable=emit-coverage
        self, core: CoreView, inst: DynInst, l1_miss: bool
    ) -> None:
        idx = self._idx(inst.pc)
        ctr = self._table[idx]
        if l1_miss:
            if ctr < 3:
                self._table[idx] = ctr + 1
        else:
            if ctr > 0:
                self._table[idx] = ctr - 1

    def on_load_left(self, core: CoreView, inst: DynInst) -> None:
        if inst.tag in self._counted:
            self._counted.discard(inst.tag)
            if self._pending:
                self._pending[inst.thread] -= 1
                if self._pending[
                    inst.thread
                ] == self.threshold - 1 and self.bus.wants(TOPIC_PDG_GATE):
                    self.bus.emit(
                        TOPIC_PDG_GATE,
                        thread=inst.thread,
                        pending=self._pending[inst.thread],
                        gated=False,
                    )


_POLICIES = {
    "icount": ICountPolicy,
    "rr": RoundRobinPolicy,
    "stall": StallPolicy,
    "flush": FlushPolicy,
    "dg": DGPolicy,
    "pdg": PDGPolicy,
}


def make_fetch_policy(name: str, **kwargs: Any) -> FetchPolicy:
    """Instantiate a fetch policy by its paper name (case-insensitive)."""
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        raise KeyError(f"unknown fetch policy {name!r}; available: {sorted(_POLICIES)}") from None
    return cls(**kwargs)
