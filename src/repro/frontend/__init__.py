"""Front-end: branch prediction, fetch policies and the fetch unit."""

from repro.frontend.branch_predictor import BranchPredictor, BranchPredictorStats
from repro.frontend.fetch_policy import (
    DGPolicy,
    FetchPolicy,
    FlushPolicy,
    ICountPolicy,
    PDGPolicy,
    RoundRobinPolicy,
    StallPolicy,
    make_fetch_policy,
)

__all__ = [
    "BranchPredictor",
    "BranchPredictorStats",
    "FetchPolicy",
    "ICountPolicy",
    "RoundRobinPolicy",
    "StallPolicy",
    "FlushPolicy",
    "DGPolicy",
    "PDGPolicy",
    "make_fetch_policy",
]
