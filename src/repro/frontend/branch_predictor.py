"""Branch prediction: gshare + BTB + per-thread return address stacks.

Table 2 configuration: a 2K-entry gshare PHT indexed by PC XOR a 10-bit
per-thread global history, a 2K-entry 4-way BTB, and a 32-entry RAS per
thread.

Design notes
------------
* The PHT holds 2-bit saturating counters shared across threads (as in
  a real SMT front-end, so destructive/constructive inter-thread
  aliasing is modelled); the global history register is per-thread.
* History and PHT are updated non-speculatively when a branch commits.
  This forgoes speculative-history repair logic at a small accuracy
  cost, which is irrelevant to the paper's mechanisms (they consume the
  resulting wrong-path population, not the predictor internals).
* The BTB caches taken-branch targets.  Because the synthetic ISA
  addresses control-flow targets as basic-block ids, the BTB maps
  ``pc -> block id``.  A predicted-taken branch that misses in the BTB
  falls back to not-taken (no target available at fetch).
* The RAS is speculatively pushed/popped at fetch.  Wrong-path
  corruption is intentionally left unrepaired (real RAS behaviour
  without checkpointing).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import BranchPredictorConfig


@dataclass
class BranchPredictorStats:
    """Aggregate direction/target prediction counters."""

    direction_lookups: int = 0
    direction_correct: int = 0
    btb_lookups: int = 0
    btb_hits: int = 0
    ras_pushes: int = 0
    ras_pops: int = 0

    @property
    def direction_accuracy(self) -> float:
        if not self.direction_lookups:
            return 0.0
        return self.direction_correct / self.direction_lookups


class BranchPredictor:
    """Gshare direction predictor with BTB and per-thread RAS."""

    def __init__(self, config: BranchPredictorConfig, num_threads: int):
        config.validate()
        self.config = config
        self.num_threads = num_threads
        self._pht = [2] * config.pht_entries  # weakly taken
        self._pht_mask = config.pht_entries - 1
        self._hist = [0] * num_threads
        self._hist_mask = (1 << config.history_bits) - 1
        # BTB: direct-mapped-by-set, assoc ways of (tag, target), LRU.
        self._btb_sets = config.btb_entries // config.btb_assoc
        self._btb: list[list[tuple[int, int]]] = [[] for _ in range(self._btb_sets)]
        self._ras: list[list[int]] = [[] for _ in range(num_threads)]
        self.stats = BranchPredictorStats()

    # ------------------------------------------------------------------
    # Direction
    # ------------------------------------------------------------------
    def _pht_index(self, pc: int, thread: int) -> int:
        return ((pc >> 2) ^ self._hist[thread]) & self._pht_mask

    def predict_direction(self, pc: int, thread: int) -> tuple[bool, int]:
        """Predict taken/not-taken for the conditional branch at ``pc``.

        Returns ``(taken, pht_index)``; the index must be passed back to
        :meth:`update_direction` so training hits the entry that made
        the prediction (the history register will have moved by then).
        """
        idx = self._pht_index(pc, thread)
        return self._pht[idx] >= 2, idx

    def update_direction(
        self, pc: int, thread: int, taken: bool, predicted: bool, idx: int | None = None
    ) -> None:
        """Commit-time update of PHT and the thread's global history."""
        if idx is None:
            idx = self._pht_index(pc, thread)
        ctr = self._pht[idx]
        if taken:
            if ctr < 3:
                self._pht[idx] = ctr + 1
        else:
            if ctr > 0:
                self._pht[idx] = ctr - 1
        self._hist[thread] = ((self._hist[thread] << 1) | int(taken)) & self._hist_mask
        self.stats.direction_lookups += 1
        if taken == predicted:
            self.stats.direction_correct += 1

    # ------------------------------------------------------------------
    # Targets (BTB)
    # ------------------------------------------------------------------
    def _btb_set(self, pc: int) -> int:
        return (pc >> 2) % self._btb_sets

    def btb_lookup(self, pc: int) -> int | None:
        """Return the cached taken-target (block id) or None on miss."""
        self.stats.btb_lookups += 1
        ways = self._btb[self._btb_set(pc)]
        for i, (tag, target) in enumerate(ways):
            if tag == pc:
                if i:
                    ways.insert(0, ways.pop(i))
                self.stats.btb_hits += 1
                return target
        return None

    def btb_update(self, pc: int, target: int) -> None:
        """Install/refresh the target of a taken control instruction."""
        ways = self._btb[self._btb_set(pc)]
        for i, (tag, _) in enumerate(ways):
            if tag == pc:
                ways[i] = (pc, target)
                if i:
                    ways.insert(0, ways.pop(i))
                return
        ways.insert(0, (pc, target))
        if len(ways) > self.config.btb_assoc:
            ways.pop()

    # ------------------------------------------------------------------
    # RAS
    # ------------------------------------------------------------------
    def ras_push(self, thread: int, return_block: int) -> None:
        ras = self._ras[thread]
        ras.append(return_block)
        if len(ras) > self.config.ras_entries:
            ras.pop(0)
        self.stats.ras_pushes += 1

    def ras_pop(self, thread: int) -> int | None:
        self.stats.ras_pops += 1
        ras = self._ras[thread]
        return ras.pop() if ras else None

    def reset_stats(self) -> None:
        """Zero the counters without disturbing the trained state (used
        after functional warm-up: warm-up predictions don't count)."""
        self.stats = BranchPredictorStats()

    def reset(self) -> None:
        self._pht = [2] * self.config.pht_entries
        self._hist = [0] * self.num_threads
        self._btb = [[] for _ in range(self._btb_sets)]
        self._ras = [[] for _ in range(self.num_threads)]
        self.stats = BranchPredictorStats()
