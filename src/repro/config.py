"""Machine and simulation configuration.

The defaults of :class:`MachineConfig` reproduce Table 2 of the paper
("Simulated Machine Configuration"): an 8-wide SMT processor with a
96-entry shared issue queue, per-thread 96-entry ROBs and 48-entry
load/store queues, a gshare branch predictor with a 2K-entry BTB and a
per-thread 32-entry return address stack, 32KB/64KB split L1 caches, a
unified 2MB L2 and a 200-cycle memory.

:class:`SimulationConfig` bundles the run-length and interval knobs used
by the reliability mechanisms (Section 2.2 and Section 5 of the paper).
The paper's values (10K-cycle intervals, 40K-instruction ACE analysis
window, 400M-instruction runs) are the defaults; ``scaled_for_bench``
returns a proportionally scaled configuration so that the pure-Python
simulator regenerates every figure in minutes rather than weeks.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any


@dataclass
class CacheConfig:
    """Geometry and timing of one cache level.

    ``size`` is in bytes; ``line_size`` in bytes; ``assoc`` is the set
    associativity; ``latency`` the hit latency in cycles; ``ports`` the
    number of accesses serviceable per cycle.
    """

    size: int
    assoc: int
    line_size: int
    latency: int
    ports: int = 2

    @property
    def num_lines(self) -> int:
        return self.size // self.line_size

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.assoc

    def validate(self) -> None:
        if self.size <= 0 or self.line_size <= 0 or self.assoc <= 0:
            raise ValueError("cache size, line size and associativity must be positive")
        if self.latency < 0 or self.ports <= 0:
            raise ValueError("cache latency must be non-negative and ports positive")
        if self.size % self.line_size:
            raise ValueError("cache size must be a multiple of the line size")
        if self.num_lines % self.assoc:
            raise ValueError("number of lines must be a multiple of the associativity")
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("number of sets must be a power of two")


@dataclass
class TLBConfig:
    """Geometry of a TLB: ``entries`` total, ``assoc``-way, with a fixed
    ``miss_latency`` charged on a miss (Table 2: 200 cycles)."""

    entries: int
    assoc: int
    miss_latency: int
    page_size: int = 4096

    def validate(self) -> None:
        if self.entries <= 0 or self.assoc <= 0:
            raise ValueError("TLB entries and associativity must be positive")
        if self.entries % self.assoc:
            raise ValueError("TLB entries must be a multiple of the associativity")
        if self.miss_latency <= 0:
            raise ValueError("TLB miss latency must be positive")
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError("page size must be a positive power of two")


@dataclass
class BranchPredictorConfig:
    """Gshare predictor per Table 2: 2K-entry PHT, 10-bit global history
    per thread, 2K-entry 4-way BTB, 32-entry RAS per thread."""

    pht_entries: int = 2048
    history_bits: int = 10
    btb_entries: int = 2048
    btb_assoc: int = 4
    ras_entries: int = 32

    def validate(self) -> None:
        if self.pht_entries <= 0 or self.pht_entries & (self.pht_entries - 1):
            raise ValueError("PHT entries must be a positive power of two")
        if not (0 < self.history_bits <= 30):
            raise ValueError("history_bits must be in (0, 30]")
        if self.btb_entries <= 0 or self.btb_assoc <= 0:
            raise ValueError("BTB entries and associativity must be positive")
        if self.btb_entries % self.btb_assoc:
            raise ValueError("BTB entries must be a multiple of its associativity")
        if self.ras_entries <= 0:
            raise ValueError("RAS entries must be positive")


@dataclass
class MachineConfig:
    """Table 2 machine configuration for the simulated SMT processor."""

    num_threads: int = 4
    fetch_width: int = 8
    decode_width: int = 8
    issue_width: int = 8
    commit_width: int = 8

    iq_size: int = 96
    rob_size_per_thread: int = 96
    lsq_size_per_thread: int = 48
    fetch_queue_size: int = 32  # per-thread fetch/decode buffer

    # Function units (Table 2).
    int_alu: int = 8
    int_mult_div: int = 4
    load_store_units: int = 4
    fp_alu: int = 8
    fp_mult_div_sqrt: int = 4

    # Operation latencies (cycles), M-Sim/SimpleScalar-style defaults.
    lat_int_alu: int = 1
    lat_int_mult: int = 3
    lat_int_div: int = 20
    lat_fp_alu: int = 2
    lat_fp_mult: int = 4
    lat_fp_div: int = 12
    lat_fp_sqrt: int = 24

    branch_predictor: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)
    branch_mispredict_penalty: int = 6  # front-end refill after squash

    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(size=32 * 1024, assoc=2, line_size=32, latency=1)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(size=64 * 1024, assoc=4, line_size=64, latency=1)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size=2 * 1024 * 1024, assoc=4, line_size=128, latency=12, ports=1
        )
    )
    memory_latency: int = 200

    itlb: TLBConfig = field(default_factory=lambda: TLBConfig(entries=128, assoc=4, miss_latency=200))
    dtlb: TLBConfig = field(default_factory=lambda: TLBConfig(entries=256, assoc=4, miss_latency=200))

    def validate(self) -> None:
        """Raise ``ValueError`` for inconsistent configurations."""
        if self.num_threads <= 0:
            raise ValueError("num_threads must be positive")
        if min(self.fetch_width, self.decode_width, self.issue_width, self.commit_width) <= 0:
            raise ValueError("pipeline widths must be positive")
        if self.iq_size <= 0 or self.rob_size_per_thread <= 0 or self.lsq_size_per_thread <= 0:
            raise ValueError("queue sizes must be positive")
        if self.fetch_queue_size <= 0:
            raise ValueError("fetch_queue_size must be positive")
        if (
            min(
                self.int_alu,
                self.int_mult_div,
                self.load_store_units,
                self.fp_alu,
                self.fp_mult_div_sqrt,
            )
            <= 0
        ):
            raise ValueError("functional-unit counts must be positive")
        if (
            min(
                self.lat_int_alu,
                self.lat_int_mult,
                self.lat_int_div,
                self.lat_fp_alu,
                self.lat_fp_mult,
                self.lat_fp_div,
                self.lat_fp_sqrt,
            )
            <= 0
        ):
            raise ValueError("operation latencies must be positive")
        if self.branch_mispredict_penalty < 0:
            raise ValueError("branch_mispredict_penalty must be non-negative")
        if self.memory_latency <= 0:
            raise ValueError("memory_latency must be positive")
        for cache in (self.l1i, self.l1d, self.l2):
            cache.validate()
        self.itlb.validate()
        self.dtlb.validate()
        self.branch_predictor.validate()

    def replace(self, **kwargs: Any) -> "MachineConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)


@dataclass
class ReliabilityConfig:
    """Knobs of the paper's reliability mechanisms.

    Defaults are the paper's choices: 10K-cycle adaptation interval
    (Section 2.2), ``t_cache_miss = 16`` L2 misses per interval
    (Section 2.2(2)), 40K-instruction post-retirement ACE analysis window
    (Section 2.1, following Mukherjee et al.), a DVM trigger threshold at
    90% of the reliability target, 5 fine-grained AVF samples per
    interval and a waiting/ready ratio recomputed every 50 cycles
    (Section 5.1).
    """

    interval_cycles: int = 10_000
    ace_window: int = 40_000
    t_cache_miss: int = 16
    dvm_trigger_fraction: float = 0.9
    dvm_samples_per_interval: int = 5
    dvm_ratio_period: int = 50
    # wq_ratio adaptation: slow (additive) increase, rapid (multiplicative)
    # decrease — Section 5.1 "adapted through slow increases and rapid
    # decreases in order to ensure a quick response".  Bounds sized for
    # this machine's natural waiting/ready ratios (~3 on CPU mixes, up
    # to ~30-60 on clogged MEM mixes).
    wq_ratio_initial: float = 16.0
    wq_ratio_min: float = 0.5
    wq_ratio_max: float = 64.0
    wq_ratio_increase_step: float = 2.0
    wq_ratio_decrease_factor: float = 0.5
    num_ipc_regions: int = 4

    def validate(self) -> None:
        if self.interval_cycles <= 0 or self.ace_window <= 0:
            raise ValueError("interval_cycles and ace_window must be positive")
        if self.t_cache_miss < 0:
            raise ValueError("t_cache_miss must be non-negative")
        if not (0.0 < self.dvm_trigger_fraction <= 1.0):
            raise ValueError("dvm_trigger_fraction must be in (0, 1]")
        if self.dvm_samples_per_interval <= 0 or self.dvm_ratio_period <= 0:
            raise ValueError("DVM sampling parameters must be positive")
        if not (0.0 < self.wq_ratio_min <= self.wq_ratio_initial <= self.wq_ratio_max):
            raise ValueError("wq_ratio bounds must satisfy min <= initial <= max")
        if self.wq_ratio_increase_step <= 0.0:
            raise ValueError("wq_ratio_increase_step must be positive")
        if not (0.0 < self.wq_ratio_decrease_factor < 1.0):
            raise ValueError("wq_ratio_decrease_factor must be in (0, 1)")
        if self.num_ipc_regions <= 0:
            raise ValueError("num_ipc_regions must be positive")


@dataclass
class SimulationConfig:
    """Run-length and bookkeeping knobs of a simulation."""

    max_cycles: int = 100_000
    max_instructions: int | None = None
    warmup_cycles: int = 0
    #: Functional branch-predictor warm-up: before timing starts, each
    #: thread's committed path is replayed through the predictor for
    #: this many instructions (the fast-forward warming that SimPoint
    #: sampling gives the paper's 400M-instruction runs).
    bp_warmup_instructions: int = 30_000
    seed: int = 42
    reliability: ReliabilityConfig = field(default_factory=ReliabilityConfig)
    collect_ready_queue_histogram: bool = False
    collect_interval_stats: bool = True
    #: Default simulation engine: "reference" (the inline interpreter of
    #: ``SMTPipeline.run``) or "fast" (the specialized cycle loop of
    #: ``repro.core.fastsim``).  A ``backend=`` argument given directly
    #: to ``SMTPipeline`` overrides this.  Kept as a plain string so the
    #: bottom-layer config module needs no import from ``repro.core``;
    #: ``make_backend`` re-validates against the live registry.
    backend: str = "reference"

    def validate(self) -> None:
        if self.max_cycles <= 0:
            raise ValueError("max_cycles must be positive")
        if self.max_instructions is not None and self.max_instructions <= 0:
            raise ValueError("max_instructions must be positive when set")
        if self.warmup_cycles < 0 or self.warmup_cycles >= self.max_cycles:
            raise ValueError("warmup_cycles must be in [0, max_cycles)")
        if self.bp_warmup_instructions < 0:
            raise ValueError("bp_warmup_instructions must be non-negative")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        if self.backend not in ("reference", "fast"):
            raise ValueError('backend must be "reference" or "fast"')
        self.reliability.validate()

    @staticmethod
    def scaled_for_bench(
        max_cycles: int = 20_000,
        warmup_cycles: int = 2_000,
        seed: int = 42,
        **reliability_overrides: Any,
    ) -> "SimulationConfig":
        """A configuration scaled so every figure regenerates quickly.

        Interval mechanisms shrink from the paper's 10K cycles to 2K so a
        20K-cycle run still spans ~10 adaptation intervals, matching the
        control-loop dynamics of the paper's 400M-instruction runs.
        """
        rel = ReliabilityConfig(
            interval_cycles=2_000,
            ace_window=4_000,
            dvm_ratio_period=50,
            **reliability_overrides,
        )
        return SimulationConfig(
            max_cycles=max_cycles,
            warmup_cycles=warmup_cycles,
            seed=seed,
            # Long functional fast-forward: CPU-class data footprints
            # must be L2-resident before timing (MEM footprints exceed
            # the L2 and stay miss-bound regardless).
            bp_warmup_instructions=100_000,
            reliability=rel,
            collect_interval_stats=True,
        )


DEFAULT_MACHINE = MachineConfig()
