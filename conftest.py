"""Make the src layout importable for pytest even when the package is
not installed (this offline environment lacks `wheel`, so
`pip install -e .` may be unavailable; `python setup.py develop` is the
supported editable install)."""

import sys
from pathlib import Path

_SRC = str(Path(__file__).parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
