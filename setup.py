"""Legacy setup shim so `pip install -e .` works without the `wheel`
package (this environment is offline; PEP 660 editable installs need
wheel).  All metadata lives in pyproject.toml."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
