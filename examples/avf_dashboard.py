#!/usr/bin/env python
"""Live AVF dashboard: subscribe to the reliability streams and plot.

Demonstrates the reliability-observability tentpole end to end:

1. a hand-rolled subscriber on ``reliability.attribution`` keeps a
   live ACE-bit ticker while the run executes — nothing here reads
   simulator internals, only bus events;
2. the bundled :class:`~repro.reliability.observe.ReliabilityObserver`
   consumes the same streams into a full vulnerability report;
3. the report renders as terminal "plots": oracle-vs-online AVF
   sparklines, per-thread shares, residency summaries and the
   per-entry IQ vulnerability heatmap.

The run itself is untouched: the same configuration with no
subscribers produces identical physics (every emit site sits behind a
cached zero-subscriber check).

Usage::

    python examples/avf_dashboard.py [mix] [cycles]
"""

import sys

from repro.config import MachineConfig
from repro.core.pipeline import SMTPipeline
from repro.harness.charts import sparkline
from repro.harness.runner import BenchScale, get_programs
from repro.reliability.dvm import DVMController
from repro.reliability.observe import ReliabilityObserver
from repro.telemetry.topics import TOPIC_RELIABILITY_ATTRIBUTION
from repro.workloads import get_mix


def main() -> int:
    mix = sys.argv[1] if len(sys.argv) > 1 else "MEM-A"
    cycles = int(sys.argv[2]) if len(sys.argv) > 2 else 12_000
    scale = BenchScale(max_cycles=cycles)
    sim = scale.sim_config()

    pipe = SMTPipeline(
        get_programs(mix, scale),
        machine=MachineConfig(num_threads=len(get_mix(mix).benchmarks)),
        sim=sim,
        dvm=DVMController(0.10, config=sim.reliability),
    )

    # --- 1. hand-rolled subscriber: a live ACE-bit ticker -------------
    live = {"events": 0, "ace": 0, "bit_cycles": 0}

    def on_attribution(event):
        live["events"] += 1
        live["ace"] += int(event.payload["ace"])
        live["bit_cycles"] += event.payload["iq_bit_cycles"]
        if live["events"] % 500 == 0:
            print(f"  [cycle {event.cycle:>6}] {live['events']} resolutions, "
                  f"{live['ace']} ACE, {live['bit_cycles']} IQ bit-cycles")

    sub = pipe.bus.subscribe(TOPIC_RELIABILITY_ATTRIBUTION, on_attribution)

    # --- 2. the reference consumer, on the same bus --------------------
    observer = ReliabilityObserver.for_pipeline(pipe)

    print(f"AVF dashboard [{mix}, DVM target 0.10, {cycles} cycles]")
    result = pipe.run()
    sub.close()
    observer.detach()
    report = observer.report(result.cycles)

    # --- 3. AVF series: oracle vs. online ------------------------------
    oracle = report.oracle_interval_avf["iq"]
    online = report.online_interval_avf["iq"]
    hi = max(oracle + online) or 1.0
    print(f"\n  oracle IQ AVF  {sparkline(oracle, 0.0, hi)}  "
          f"(overall {report.oracle_overall_avf['iq']:.3f})")
    print(f"  online IQ AVF  {sparkline(online, 0.0, hi)}")
    if "iq" in report.divergence:
        d = report.divergence["iq"]
        print(f"  divergence     mean |Δ|={d['mean_abs']:.4f} "
              f"max |Δ|={d['max_abs']:.4f}")

    # --- 4. who carries the vulnerability -------------------------------
    threads = report.per_thread_bit_cycles["iq"]
    total = sum(threads.values()) or 1
    print("\n  IQ ACE-bit share by thread:")
    for t in sorted(threads):
        share = threads[t] / total
        print(f"    t{t}  {'#' * round(share * 40):<40s} {share:.0%}")

    # --- 5. residency and the per-entry heatmap -------------------------
    res = report.residency["iq_residency"]
    q = report.residency_quantiles["iq_residency"]
    print(f"\n  IQ residency: n={int(res['count'])} mean={res['mean']:.1f} "
          f"p50≈{q['p50']:.0f} p90≈{q['p90']:.0f} max={res['max']:.0f} cycles")
    print()
    for line in report.format().splitlines():
        if "heatmap" in line or line.strip().startswith("slots"):
            print(f"  {line}")

    print(f"\n  (streamed {observer.attributions} attribution events; "
          f"DVM estimate samples: {len(observer.estimates)})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
