#!/usr/bin/env python
"""Dynamic Vulnerability Management demo (Section 5).

Runs a memory-intensive mix twice — without and with the DVM
controller targeting 0.5x the baseline's maximum interval AVF — and
prints the per-interval IQ AVF trace of both runs as an ASCII strip
chart, plus the PVE (percentage of vulnerability emergencies) before
and after.

Usage::

    python examples/dvm_threshold_control.py [mix] [threshold-fraction]
"""

import sys

from repro.harness.charts import strip_chart
from repro.harness.runner import BenchScale, run_sim


def main() -> None:
    mix = sys.argv[1] if len(sys.argv) > 1 else "MEM-A"
    frac = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    scale = BenchScale(
        # Deliberately rescaled for a fast demo run (finer DVM intervals).
        max_cycles=24_000, warmup_cycles=4_000, interval_cycles=1_000,  # lint: disable=paper-fidelity
        t_cache_miss=3,  # lint: disable=paper-fidelity
    )

    base = run_sim(mix, scale)
    target = frac * base.max_iq_avf
    online_target = frac * base.max_online_estimate
    dvm = run_sim(mix, scale, dvm_target=online_target)

    print(f"Workload {mix}; reliability target = {frac}*MaxAVF = {target:.3f}\n")
    print("Baseline interval IQ AVF ('<' marks an emergency):")
    print(strip_chart(base.warm_iq_interval_avf, threshold=target))
    print(f"\n  PVE = {base.pve(target):.0%}, IPC = {base.ipc:.2f}\n")
    print("With DVM:")
    print(strip_chart(dvm.warm_iq_interval_avf, threshold=target))
    print(f"\n  PVE = {dvm.pve(target):.0%}, IPC = {dvm.ipc:.2f}")
    print(
        f"\nDVM eliminated {max(base.pve(target) - dvm.pve(target), 0):.0%} of "
        f"emergency intervals at {1 - dvm.ipc / base.ipc:.1%} throughput cost."
    )


if __name__ == "__main__":
    main()
