#!/usr/bin/env python
"""Using the library on a custom machine + custom workload.

Shows the public API beyond the paper's exact setup:

* build a non-Table-2 machine (half-size IQ, 2 contexts);
* pick individual benchmark personalities instead of a Table 3 mix;
* compare fetch policies head-to-head on it;
* query per-structure AVFs and branch/cache statistics.

Usage::

    python examples/custom_machine.py
"""

from repro import (
    MachineConfig,
    SimulationConfig,
    SMTPipeline,
    Structure,
    generate_program,
    profile_and_apply,
)


def main() -> None:
    # A narrower SMT core: 2 contexts, 48-entry IQ, 4-wide.
    machine = MachineConfig(
        num_threads=2,
        fetch_width=4, decode_width=4, issue_width=4, commit_width=4,
        iq_size=48,
        rob_size_per_thread=48,
        lsq_size_per_thread=24,
        int_alu=4, fp_alu=4, load_store_units=2,
    )
    machine.validate()

    # One compute-bound and one memory-bound thread.
    programs = [generate_program("gcc", seed=7), generate_program("mcf", seed=8)]
    for p in programs:
        profile_and_apply(p, n_instructions=20_000, window=4_000)

    sim = SimulationConfig.scaled_for_bench(max_cycles=10_000, warmup_cycles=2_000)

    print(f"{'policy':8s} {'IPC':>6s} {'gcc':>6s} {'mcf':>6s} {'IQ AVF':>8s} {'flushes':>8s}")
    for policy in ("icount", "stall", "flush", "dg", "pdg"):
        res = SMTPipeline(
            programs, machine=machine, sim=sim, fetch_policy=policy
        ).run()
        print(
            f"{policy:8s} {res.ipc:6.2f} {res.per_thread_ipc[0]:6.2f} "
            f"{res.per_thread_ipc[1]:6.2f} {res.iq_avf:8.3f} {res.flushes:8d}"
        )

    # Per-structure AVF detail for the last configuration.
    res = SMTPipeline(programs, machine=machine, sim=sim).run()
    print("\nPer-structure AVF (baseline ICOUNT):")
    for s in Structure:
        print(f"  {s.name:4s} {res.overall_avf[s]:.3f}")


if __name__ == "__main__":
    main()
