#!/usr/bin/env python
"""Quickstart — simulate one SMT workload mix and inspect IQ reliability.

Runs the paper's CPU-A mix (bzip2, eon, gcc, perlbmk) on the Table 2
machine, first with the conventional oldest-first scheduler and then
with VISA issue (Section 2.1), and prints throughput and IQ AVF for
both.

Usage::

    python examples/quickstart.py [cycles]
"""

import sys

from repro import (
    SimulationConfig,
    SMTPipeline,
    get_mix,
    profile_and_apply,
)


def main() -> None:
    cycles = int(sys.argv[1]) if len(sys.argv) > 1 else 12_000

    # 1. Instantiate the synthetic SPEC2000 stand-ins for the mix.
    mix = get_mix("CPU-A")
    programs = mix.programs(seed=1)
    print(f"Workload {mix.name}: {', '.join(mix.benchmarks)}")

    # 2. Offline vulnerability profiling (Section 2.1): classify each
    #    static instruction as ACE/un-ACE and encode the 1-bit tag.
    for program in programs:
        prof = profile_and_apply(program, n_instructions=30_000, window=6_000)
        print(
            f"  profiled {program.name:8s}: PC-accuracy {prof.accuracy:5.1%}, "
            f"ACE instances {prof.ace_fraction:5.1%}"
        )

    # 3. Simulate: baseline scheduler, then VISA.
    sim = SimulationConfig.scaled_for_bench(max_cycles=cycles, warmup_cycles=cycles // 6)
    results = {}
    for scheduler in ("oldest", "visa"):
        result = SMTPipeline(programs, sim=sim, scheduler=scheduler).run()
        results[scheduler] = result
        print(
            f"\n[{scheduler:>6s}] IPC {result.ipc:.2f} "
            f"(per thread: {', '.join(f'{x:.2f}' for x in result.per_thread_ipc)})"
        )
        print(f"         IQ AVF {result.iq_avf:.3f} (max interval {result.max_iq_avf:.3f})")
        print(
            f"         branch accuracy {result.bp_accuracy:.1%}, "
            f"L1D miss rate {result.l1d_miss_rate:.1%}, "
            f"L2 misses {result.l2_misses}"
        )

    base, visa = results["oldest"], results["visa"]
    print(
        f"\nVISA vs baseline: IQ AVF x{visa.iq_avf / base.iq_avf:.2f}, "
        f"IPC x{visa.ipc / base.ipc:.2f}"
    )


if __name__ == "__main__":
    main()
