#!/usr/bin/env python
"""Controller decisions as a timeline: DVM + Optimization 2 observed.

Runs one MEM mix with DVM and the L2-miss-sensitive IQ allocation,
records every controller decision through the telemetry bus, and then
walks the evidence: the merged decision/interval timeline, the
per-kind decision counts, the run's provenance manifest, the metrics
snapshot, and the self-profiler's per-stage wall-time shares.

This is the observable counterpart of the paper's Section 5 narrative:
the trigger arming on L2 misses, wq_ratio's slow-up/rapid-down walk,
restore-thread picks while all threads stall, and Opt2's FLUSH-mode
switches are individual, timestamped events here instead of end-of-run
averages.

Usage::

    python examples/decision_timeline.py [mix] [cycles]
"""

import sys

from repro.harness.runner import BenchScale, run_recorded
from repro.telemetry.timeline import render_timeline


def main() -> int:
    mix = sys.argv[1] if len(sys.argv) > 1 else "MEM-A"
    cycles = int(sys.argv[2]) if len(sys.argv) > 2 else 12_000
    scale = BenchScale(max_cycles=cycles)

    result, recorder, profile = run_recorded(
        mix, scale, dispatch="opt2", dvm_target=0.10
    )

    print(render_timeline(
        recorder.events,
        title=f"decision timeline [{mix}, opt2 + DVM(0.10)]",
        chart=True,
        max_rows=30,
    ))

    print("decision kinds:")
    for topic, count in sorted(recorder.decision_kinds().items()):
        print(f"  {topic:14s} x{count}")

    manifest = result.manifest
    print("\nprovenance:")
    print(f"  config hash  {manifest.config_hash}")
    print(f"  seed         {manifest.seed}")
    print(f"  git          {manifest.git_sha[:12]}{' (dirty)' if manifest.git_dirty else ''}")
    print(f"  packages     {', '.join(f'{k} {v}' for k, v in sorted(manifest.packages.items()))}")

    print("\nselected metrics:")
    for name in (
        "pipeline.cycles", "pipeline.commit.total", "mem.l2.misses",
        "dvm.samples", "dvm.l2_triggers", "dvm.restore_grants",
        "dvm.mean_ratio", "reliability.avf.iq",
    ):
        if name in result.metrics:
            print(f"  {name:24s} {result.metrics[name]}")

    print()
    print(profile.format())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
