#!/usr/bin/env python
"""Reproduce the Figure 5 story on one workload of each category.

For CPU-A, MIX-A and MEM-A, runs the baseline, VISA, VISA+opt1
(dynamic IQ resource allocation, Figure 3) and VISA+opt2 (L2-miss
sensitive allocation, Figure 4), and prints normalized IQ AVF and
throughput IPC — the shape of the paper's headline result: large AVF
reductions at (nearly) no throughput cost once opt2's FLUSH trigger
handles the memory-bound mixes.

Usage::

    python examples/avf_reduction_sweep.py [cycles]
"""

import sys

from repro.harness.runner import BenchScale, run_sim


def main() -> None:
    cycles = int(sys.argv[1]) if len(sys.argv) > 1 else 14_000
    scale = BenchScale(max_cycles=cycles)

    configs = [
        ("baseline", dict(scheduler="oldest")),
        ("VISA", dict(scheduler="visa")),
        ("VISA+opt1", dict(scheduler="visa", dispatch="opt1")),
        ("VISA+opt2", dict(scheduler="visa", dispatch="opt2")),
    ]

    print(f"{'mix':8s} {'config':10s} {'IQ AVF':>8s} {'norm':>6s} {'IPC':>6s} {'norm':>6s}")
    for mix in ("CPU-A", "MIX-A", "MEM-A"):
        base = None
        for name, kw in configs:
            res = run_sim(mix, scale, **kw)
            if base is None:
                base = res
            print(
                f"{mix:8s} {name:10s} {res.iq_avf:8.3f} "
                f"{res.iq_avf / base.iq_avf:6.2f} {res.ipc:6.2f} "
                f"{res.ipc / base.ipc:6.2f}"
            )
        print()


if __name__ == "__main__":
    main()
