#!/usr/bin/env python
"""Instruction-level pipeline tracing and analysis.

Attaches a :class:`PipelineTracer` to a short MEM-A run, prints the
stage-latency summary, shows the timeline of the first few committed
instructions of one thread, and demonstrates how IQ residency differs
between (predicted) ACE and un-ACE instructions under the baseline vs
the VISA scheduler — the microscopic view of the paper's Section 2.1
argument.

Usage::

    python examples/pipeline_trace.py [mix] [cycles]
"""

import sys

from repro import SimulationConfig, SMTPipeline, get_mix, profile_and_apply
from repro.harness.trace import PipelineTracer


def run_traced(programs, scheduler, cycles):
    sim = SimulationConfig.scaled_for_bench(max_cycles=cycles, warmup_cycles=cycles // 6)
    pipe = SMTPipeline(programs, sim=sim, scheduler=scheduler)
    with PipelineTracer(pipe, limit=200_000) as tracer:
        pipe.run()
    return tracer


def mean_ready_wait(events, ace_pred):
    """Cycles spent ready-but-not-issued — the time VISA reorders."""
    sel = [
        e for e in events
        if not e.squashed and e.ace_pred == ace_pred and e.issue >= 0 and e.ready >= 0
    ]
    if not sel:
        return 0.0
    return sum(max(e.issue - e.ready, 0) for e in sel) / len(sel)


def main() -> None:
    mix_name = sys.argv[1] if len(sys.argv) > 1 else "MEM-A"
    cycles = int(sys.argv[2]) if len(sys.argv) > 2 else 8_000

    programs = get_mix(mix_name).programs(seed=1)
    for p in programs:
        profile_and_apply(p, n_instructions=30_000, window=6_000)

    base = run_traced(programs, "oldest", cycles)
    print(f"Workload {mix_name}, baseline scheduler — summary:")
    for key, value in base.summary().items():
        print(f"  {key:24s} {value:.3f}" if isinstance(value, float) else f"  {key:24s} {value}")

    print("\nFirst committed instructions of thread 0:")
    print(f"  {'tag':>6s} {'op':8s} {'F':>5s} {'D':>5s} {'I':>5s} {'C':>5s} {'R':>5s} ace")
    for e in [e for e in base.of_thread(0) if not e.squashed][:12]:
        print(
            f"  {e.tag:6d} {e.opclass:8s} {e.fetch:5d} {e.dispatch:5d} "
            f"{e.issue:5d} {e.commit:5d} {e.iq_residency:5d} {e.ace}"
        )

    visa = run_traced(programs, "visa", cycles)
    print("\nMean ready-to-issue wait of issued instructions (cycles):")
    print(f"  {'scheduler':10s} {'pred-ACE':>9s} {'pred-unACE':>11s}")
    for name, tr in (("baseline", base), ("visa", visa)):
        print(
            f"  {name:10s} {mean_ready_wait(tr.events, True):9.2f} "
            f"{mean_ready_wait(tr.events, False):11.2f}"
        )
    print(
        "\nUnder VISA, ready predicted-ACE instructions issue sooner while"
        "\nready un-ACE instructions wait longer — the Section 2.1 mechanism"
        "\nin action (total residency is dominated by operand wait, which"
        "\nscheduling cannot change; that is why VISA alone buys only ~5%)."
    )


if __name__ == "__main__":
    main()
